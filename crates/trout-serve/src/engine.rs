//! The serving core: event-driven state, micro-batched inference, refits.
//!
//! [`ServeEngine`] owns everything a prediction needs — the cluster topology,
//! the fitted scaler, the runtime random forest, the hierarchical model, and
//! an [`IncrementalSnapshot`] fed one lifecycle event at a time. Transports
//! (stdin, TCP) stay thin: they parse lines, queue predicts, and call in.
//!
//! The model lives behind an [`Arc`] so a warm-start refit can train a clone
//! off to the side and publish it with one pointer swap — in-flight batch
//! handles keep the model they started with.
//!
//! The engine also hosts the **online drift monitor**: every served
//! prediction is remembered until the job's `start` event arrives, at which
//! point the realized queue time joins against what was answered and the
//! rolling MAE / within-2x / class-confusion counts update — the
//! operator-facing signal for when warm-start refits stop keeping up.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use trout_core::online::{update_model_in, OnlineConfig, RefitScratch};
use trout_core::{
    featurize, BatchPredictionRequest, HierarchicalModel, Lane, PackedHierarchical,
    PackedPredictScratch, PredictorScratch, QueueEstimate, QueuePrediction, RuntimePredictor,
    TroutConfig, TroutError, TroutTrainer,
};
use trout_features::incremental::JobPhase;
use trout_features::names::N_FEATURES;
use trout_features::scaling::FittedScaler;
use trout_features::{assemble_row_into, Dataset, IncrementalSnapshot, SnapshotProbe};
use trout_linalg::Matrix;
use trout_slurmsim::{JobRecord, SimulationBuilder, Trace};
use trout_workload::ClusterSpec;

use trout_std::fsio::atomic_write;
use trout_std::json::{FromJson, Json, JsonError, ToJson};

use crate::journal::{Durability, Journal, JOURNAL_FILE, SNAPSHOT_FILE};
use crate::metrics::{ServeMetrics, CONFUSION_CELLS};
use crate::protocol::{lifecycle_line, predict_line, submit_line};
use crate::recover::{replay_journal, RecoveryReport};

/// State events between eviction sweeps of the incremental index.
const EVICT_EVERY: u64 = 4_096;

/// Hard bound on cached feature rows. Rows normally leave the map at the
/// job's `end`, but a client crash can drop that event forever; at the cap
/// new jobs are served without caching (they just yield no refit example).
const CACHED_ROWS_MAX: usize = 65_536;

/// Engine policy knobs (transport knobs like the batch size live with the
/// transport).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Completed jobs between warm-start refits; 0 disables refitting.
    pub refit_every: usize,
    /// Leading fraction of the bootstrap trace the runtime forest trains on.
    pub train_frac: f64,
    /// Seed for bootstrap training.
    pub seed: u64,
    /// Serve predictions through the packed f32 inference path (weights
    /// re-packed at every model publish). Opt-in: packed outputs are near-
    /// but not bit-identical to the exact path (folded batch norm), and the
    /// authoritative model/journal/snapshot state is unaffected either way.
    pub infer_f32: bool,
    /// Bench/ablation knob: answer every predict's snapshot read with the
    /// O(n) [`IncrementalSnapshot::snapshot_scan`] walk instead of the O(1)
    /// aggregate read — the pre-fast-path behavior. Never set in
    /// production; `serve_bench`'s backlog sweep uses it to measure the
    /// fast path's speedup against the scan at matched queue depths.
    pub scan_featurize: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            refit_every: 256,
            train_frac: 0.6,
            seed: 0,
            infer_f32: false,
            scan_featurize: false,
        }
    }
}

/// A single prediction request: job id, query instant, and the priority
/// lane it is served in. The lane is scheduling metadata — it is journaled
/// (when non-default) so replay reproduces the drift monitor's stored
/// predictions exactly, and stamped onto the returned [`QueuePrediction`],
/// but it never changes the numerics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictQuery {
    /// Job id.
    pub id: u64,
    /// Query instant (unix seconds).
    pub time: i64,
    /// Priority lane.
    pub lane: Lane,
}

impl PredictQuery {
    /// A normal-lane query (what every v1 client sends).
    pub fn new(id: u64, time: i64) -> PredictQuery {
        PredictQuery {
            id,
            time,
            lane: Lane::Normal,
        }
    }

    /// Same query in `lane`.
    pub fn in_lane(mut self, lane: Lane) -> PredictQuery {
        self.lane = lane;
        self
    }
}

/// Joins served predictions against realized queue times.
///
/// Every successful predict stores its [`QueuePrediction`] keyed by job id
/// (a re-predicted job keeps only the latest answer — that is what the
/// client acted on last). When the job's `start` event arrives, the
/// realized queue time closes the pair and the rolling accuracy state
/// updates, mirrored into the engine registry's `serve.drift.*` metrics.
///
/// The error sum accumulates in `f64` in join order, so the rolling MAE is
/// **bit-identical** to `trout_core::eval::rolling_mae` over the same
/// ordered pairs — the end-to-end serve test holds the daemon to that.
#[derive(Debug, Default)]
pub struct DriftMonitor {
    served: HashMap<u64, QueuePrediction>,
    joined: u64,
    abs_err_sum: f64,
    within: u64,
    confusion: [u64; 4],
}

impl DriftMonitor {
    /// Predictions joined against an outcome so far.
    pub fn joined(&self) -> u64 {
        self.joined
    }

    /// Rolling mean absolute error in minutes (0 before any join).
    pub fn mae_min(&self) -> f64 {
        if self.joined == 0 {
            0.0
        } else {
            self.abs_err_sum / self.joined as f64
        }
    }

    /// Rolling fraction of joined predictions within 2x (the paper's
    /// within-100 %-error accuracy; 0 before any join).
    pub fn within_2x(&self) -> f64 {
        if self.joined == 0 {
            0.0
        } else {
            self.within as f64 / self.joined as f64
        }
    }

    /// Classifier confusion counts in predicted-then-actual order:
    /// quick/quick, quick/long, long/quick, long/long.
    pub fn confusion(&self) -> [u64; 4] {
        self.confusion
    }

    /// Running sum of absolute errors in minutes (join order). Exposed so a
    /// shard set can merge per-shard monitors into one fleet-wide MAE:
    /// `Σ abs_err_sum / Σ joined` weights every joined pair equally.
    pub fn abs_err_sum(&self) -> f64 {
        self.abs_err_sum
    }

    /// Joined predictions within 2x of the realized queue time.
    pub fn within_count(&self) -> u64 {
        self.within
    }

    /// Closes one prediction/outcome pair and mirrors the rolling state
    /// into the registry handles.
    fn join(&mut self, metrics: &ServeMetrics, p: &QueuePrediction, realized_min: f32) {
        let pred_min = p.as_minutes();
        // Accumulate exactly like the offline reference: per-pair f64
        // absolute error, summed in join order.
        self.abs_err_sum += (pred_min as f64 - realized_min as f64).abs();
        self.joined += 1;
        let denom = (realized_min as f64).max(1.0);
        let within = ((pred_min as f64 - realized_min as f64).abs() / denom) * 100.0 < 100.0;
        if within {
            self.within += 1;
            metrics.drift_within_2x_total.inc();
        }
        let pred_quick = matches!(p.estimate, QueueEstimate::QuickStart);
        let actual_quick = realized_min < p.cutoff_min;
        let cell = match (pred_quick, actual_quick) {
            (true, true) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (false, false) => 3,
        };
        self.confusion[cell] += 1;
        metrics.drift_confusion[cell].inc();
        metrics.drift_joined_total.inc();
        metrics.drift_mae_min.set(self.mae_min());
        metrics.drift_within_2x.set(self.within_2x());
    }

    /// The drift section of the metrics dump.
    pub fn to_json(&self) -> Json {
        let confusion: Vec<(String, Json)> = CONFUSION_CELLS
            .iter()
            .zip(&self.confusion)
            .map(|(name, &c)| (name.to_string(), Json::Int(c as i128)))
            .collect();
        Json::Obj(vec![
            ("joined".into(), Json::Int(self.joined as i128)),
            ("mae_min".into(), Json::Num(self.mae_min())),
            ("within_2x".into(), Json::Num(self.within_2x())),
            // Before `confusion`: scripted consumers anchor their drift grep
            // on the confusion object closing the section, and `pending` is
            // recovery-deterministic state so it joins the compared span.
            ("pending".into(), Json::Int(self.served.len() as i128)),
            ("confusion".into(), Json::Obj(confusion)),
        ])
    }

    /// Predictions still awaiting their realized outcome.
    pub fn pending(&self) -> usize {
        self.served.len()
    }
}

/// Reusable buffers for [`ServeEngine::predict_batch`]: the flat feature
/// staging area, the per-query slot map, the batch matrix, and the model
/// output vector. Sized by the high-water batch, so once warmed a predict
/// flush touches the allocator exactly zero times (guarded by the
/// serve-path test in `tests/zero_alloc_serve.rs`).
#[derive(Debug)]
struct EnginePredictScratch {
    flat: Vec<f32>,
    row: Vec<f32>,
    slots: Vec<Result<usize, TroutError>>,
    preds: Vec<QueuePrediction>,
    x: Matrix,
}

impl Default for EnginePredictScratch {
    fn default() -> Self {
        EnginePredictScratch {
            flat: Vec::new(),
            row: Vec::new(),
            slots: Vec::new(),
            preds: Vec::new(),
            x: Matrix::zeros(0, 0),
        }
    }
}

/// The daemon's state machine. One engine per daemon; transports share it
/// behind a mutex.
pub struct ServeEngine {
    cluster: ClusterSpec,
    scaler: FittedScaler,
    runtime_model: RuntimePredictor,
    model: Arc<HierarchicalModel>,
    index: IncrementalSnapshot,
    base_cfg: TroutConfig,
    online_cfg: OnlineConfig,
    refit_every: usize,
    /// Feature rows exactly as served, keyed by job id, captured at the
    /// job's first predict. A completed job's row + realized queue time
    /// become one refit training example — the model learns from the same
    /// inputs it answered with, never from recomputed hindsight features.
    cached_rows: HashMap<u64, Vec<f32>>,
    history_raw: Vec<Vec<f32>>,
    history_y: Vec<f32>,
    history_ids: Vec<u64>,
    completed_since_refit: usize,
    latest_time: i64,
    /// Persistent inference scratch: batch predicts reuse these buffers
    /// instead of allocating workspaces per flush. Architecture-tied, so it
    /// survives hot swaps (refits never change the layer shapes).
    scratch: PredictorScratch,
    /// Whether predictions go through the packed f32 fast path.
    infer_f32: bool,
    /// Bench/ablation knob: force the O(n) scan on every snapshot read.
    scan_featurize: bool,
    /// The packed model, when `infer_f32` is on. **Derived state**: rebuilt
    /// from the authoritative model at every publish point (bootstrap,
    /// refit, restore), never serialized or journaled.
    packed: Option<PackedHierarchical<f32>>,
    /// Scratch for the packed path (weight-independent, survives swaps).
    packed_scratch: PackedPredictScratch<f32>,
    /// Batch-assembly buffers for the predict path; reused across flushes
    /// so a steady-state predict performs zero heap allocations.
    pscratch: EnginePredictScratch,
    /// Persistent training workspaces for warm-start refits.
    refit_scratch: RefitScratch,
    /// Counters and latency histograms (dumped by the `metrics` request).
    pub metrics: ServeMetrics,
    /// Served-prediction vs realized-outcome accounting.
    drift: DriftMonitor,
    /// Featurize total (µs) of the most recent `predict_batch_into` call,
    /// read by the router to split traced shard service into featurize vs
    /// inference stages. Transient — never snapshotted.
    last_featurize_us: u64,
    /// Write-ahead journal + snapshot policy; `None` without a state dir.
    durability: Option<Durability>,
    /// True while recovery replays the journal tail: suppresses journaling
    /// (the events are already in the journal) and snapshotting (state is
    /// mid-reconstruction).
    replaying: bool,
    /// Pending compaction policy, applied to the [`Durability`] attachment
    /// when (or after) `open_state_dir` arms it.
    compact_on_snapshot: bool,
}

impl ServeEngine {
    /// Builds an engine from a historical trace: featurize it (fitting the
    /// runtime forest and the scaler), train the hierarchical model unless a
    /// pre-trained one is supplied, and start with an empty live index.
    pub fn from_trace(
        trace: &Trace,
        pretrained: Option<HierarchicalModel>,
        base_cfg: TroutConfig,
        online_cfg: OnlineConfig,
        cfg: &ServeConfig,
    ) -> ServeEngine {
        let (ds, runtime_model) = featurize(trace, cfg.train_frac, cfg.seed);
        let model = pretrained.unwrap_or_else(|| TroutTrainer::new(base_cfg.clone()).fit(&ds));
        let scratch = model.scratch(64);
        let refit_scratch = RefitScratch::for_model(&model);
        let packed = cfg
            .infer_f32
            .then(|| PackedHierarchical::from_model(&model));
        ServeEngine {
            cluster: trace.cluster.clone(),
            scaler: ds.scaler.clone(),
            runtime_model,
            model: Arc::new(model),
            index: IncrementalSnapshot::new(trace.cluster.partitions.len()),
            base_cfg,
            online_cfg,
            refit_every: cfg.refit_every,
            cached_rows: HashMap::new(),
            history_raw: Vec::new(),
            history_y: Vec::new(),
            history_ids: Vec::new(),
            completed_since_refit: 0,
            latest_time: i64::MIN,
            scratch,
            infer_f32: cfg.infer_f32,
            scan_featurize: cfg.scan_featurize,
            packed,
            packed_scratch: PackedPredictScratch::new(),
            pscratch: EnginePredictScratch::default(),
            refit_scratch,
            metrics: ServeMetrics::default(),
            drift: DriftMonitor::default(),
            last_featurize_us: 0,
            durability: None,
            replaying: false,
            compact_on_snapshot: false,
        }
    }

    /// Self-contained engine for smoke tests and benches: simulate a trace
    /// and train the smoke-sized model on it.
    pub fn bootstrap(jobs: usize, cfg: &ServeConfig) -> ServeEngine {
        let trace = SimulationBuilder::anvil_like()
            .jobs(jobs)
            .seed(cfg.seed)
            .run();
        let mut base = TroutConfig::smoke();
        base.seed = cfg.seed;
        ServeEngine::from_trace(&trace, None, base, OnlineConfig::default(), cfg)
    }

    /// The currently published model (refits swap this pointer).
    pub fn model(&self) -> Arc<HierarchicalModel> {
        Arc::clone(&self.model)
    }

    /// Whether predictions go through the packed f32 fast path.
    pub fn infer_f32(&self) -> bool {
        self.infer_f32
    }

    /// Re-derives the packed model from the authoritative one. Called at
    /// every publish point (refit, restore); a no-op unless `infer_f32`.
    fn rebuild_packed(&mut self) {
        if self.infer_f32 {
            self.packed = Some(PackedHierarchical::from_model(&self.model));
        }
    }

    /// The live snapshot index (for assertions and inspection).
    pub fn index(&self) -> &IncrementalSnapshot {
        &self.index
    }

    /// Applies a `submit`: predict the job's runtime with the forest, then
    /// register it with the incremental index. With a state dir attached the
    /// event is journaled (and made durable per the fsync policy) *first* —
    /// if the append fails the event is rejected un-applied.
    pub fn apply_submit(&mut self, rec: JobRecord) -> Result<u64, TroutError> {
        self.journal_event(|| submit_line(&rec))?;
        let id = rec.id;
        let time = rec.submit_time;
        let pred_runtime = self.runtime_model.predict(&rec);
        self.index.submit(rec, pred_runtime)?;
        self.note_event(time);
        self.maybe_snapshot();
        Ok(id)
    }

    /// Applies a `start`. If the job was predicted on, the realized queue
    /// time closes the drift-monitor pair.
    pub fn apply_start(&mut self, id: u64, time: i64) -> Result<(), TroutError> {
        self.journal_event(|| lifecycle_line("start", id, time))?;
        self.index.start(id, time)?;
        if let Some(p) = self.drift.served.remove(&id) {
            self.metrics
                .drift_pending_joins
                .set(self.drift.served.len() as f64);
            if let Some(realized) = self.index.job(id).map(|j| j.rec.queue_time_min() as f32) {
                self.drift.join(&self.metrics, &p, realized);
            }
        }
        self.note_event(time);
        self.maybe_snapshot();
        Ok(())
    }

    /// Applies an `end`. A job that actually ran and was predicted at least
    /// once becomes a refit training example (cancelled-pending jobs have no
    /// queue-time label, so their cached row is just dropped).
    pub fn apply_end(&mut self, id: u64, time: i64) -> Result<(), TroutError> {
        self.journal_event(|| lifecycle_line("end", id, time))?;
        let was_running = self
            .index
            .job(id)
            .is_some_and(|j| j.phase == JobPhase::Running);
        self.index.end(id, time)?;
        // Claim the realized label and the cached row before note_event: its
        // eviction sweep may drop this very job (queued+ran for longer than
        // the eviction window) and purge the row along with it.
        let label = self.index.job(id).map(|j| j.rec.queue_time_min() as f32);
        let raw = self.cached_rows.remove(&id);
        // A cancelled-pending job never starts: its served prediction has no
        // outcome to join against, so the drift entry just drops.
        if self.drift.served.remove(&id).is_some() {
            self.metrics.drift_purged_total.inc();
            self.metrics
                .drift_pending_joins
                .set(self.drift.served.len() as f64);
        }
        self.note_event(time);
        if let (Some(raw), true, Some(y)) = (raw, was_running, label) {
            self.push_history(id, raw, y);
            self.completed_since_refit += 1;
            self.maybe_refit();
        }
        self.maybe_snapshot();
        Ok(())
    }

    /// Answers a coalesced batch of predict queries with **one** forward
    /// pass. Per-query failures (unknown id, job no longer pending) are
    /// reported in place; the rest of the batch still predicts.
    pub fn predict_batch(
        &mut self,
        queries: &[PredictQuery],
    ) -> Vec<Result<QueuePrediction, TroutError>> {
        let mut results = Vec::with_capacity(queries.len());
        self.predict_batch_into(queries, &mut results);
        results
    }

    /// [`ServeEngine::predict_batch`] writing into a caller-owned results
    /// vector (cleared first). All staging buffers live in the engine, so
    /// once they have warmed to the high-water batch size a steady-state
    /// flush (journal detached, cached rows warm) performs **zero** heap
    /// allocations end to end: O(1) snapshot read, in-place row assembly
    /// and scaling, workspace-backed (or packed) inference, and prediction
    /// slots overwritten in place.
    pub fn predict_batch_into(
        &mut self,
        queries: &[PredictQuery],
        results: &mut Vec<Result<QueuePrediction, TroutError>>,
    ) {
        let t_all = Instant::now();
        // The scratch moves out for the duration of the call so featurize
        // can borrow `self` mutably; moving a struct of Vecs allocates
        // nothing.
        let mut ps = std::mem::take(&mut self.pscratch);
        ps.flat.clear();
        ps.slots.clear();
        let mut n_ok = 0usize;
        let mut feat_total_us = 0u64;
        for q in queries {
            // Predicts are journaled too: they cache feature rows and feed
            // the drift monitor, so replay must reproduce them (lane
            // included — the stored prediction carries it). A failed append
            // rejects just this query; the batch goes on.
            if let Err(e) = self.journal_event(|| predict_line(q.id, q.time, q.lane)) {
                ps.slots.push(Err(e));
                continue;
            }
            let t_feat = Instant::now();
            match self.featurize_pending_into(q.id, q.time, &mut ps.row) {
                Ok(()) => {
                    let feat_us = t_feat.elapsed().as_micros() as u64;
                    feat_total_us += feat_us;
                    self.metrics.featurize_us.record(feat_us);
                    ps.flat.extend_from_slice(&ps.row);
                    ps.slots.push(Ok(n_ok));
                    n_ok += 1;
                }
                Err(e) => ps.slots.push(Err(e)),
            }
        }
        ps.preds.clear();
        if n_ok > 0 {
            ps.x.reshape_scratch(n_ok, N_FEATURES);
            ps.x.as_mut_slice().copy_from_slice(&ps.flat);
            let t_inf = Instant::now();
            match &self.packed {
                Some(packed) => {
                    packed.predict_batch_into(&ps.x, false, &mut self.packed_scratch, &mut ps.preds)
                }
                None => self.model.predict_batch_into(
                    BatchPredictionRequest::new(&ps.x),
                    &mut self.scratch,
                    &mut ps.preds,
                ),
            }
            self.metrics
                .inference_us
                .record(t_inf.elapsed().as_micros() as u64);
        }
        self.metrics.batches_total.inc();
        self.metrics.predicts_total.add(n_ok as u64);
        self.metrics.batch_size.record(queries.len() as u64);
        // Every query in the batch waits for the whole flush, so the full
        // elapsed time *is* each one's end-to-end latency — recording it per
        // query keeps the real tail in the histogram (amortized cost comes
        // from batch_us.sum() / predicts instead).
        let elapsed = t_all.elapsed().as_micros() as u64;
        self.metrics.batch_us.record(elapsed);
        for _ in queries {
            self.metrics.predict_us.record(elapsed);
        }
        results.clear();
        results.extend(ps.slots.drain(..).zip(queries).map(|(s, q)| {
            s.map(|i| {
                let mut p = ps.preds[i];
                p.lane = q.lane;
                // Remember the answer for the drift join at `start`;
                // re-predicted jobs keep only the latest one. Same cap
                // policy as cached_rows against ids that never start.
                if self.drift.served.len() < CACHED_ROWS_MAX
                    || self.drift.served.contains_key(&q.id)
                {
                    self.drift.served.insert(q.id, p);
                }
                p
            })
        }));
        self.last_featurize_us = feat_total_us;
        self.metrics
            .drift_pending_joins
            .set(self.drift.served.len() as f64);
        self.pscratch = ps;
        self.maybe_snapshot();
    }

    /// Featurize total (µs) of the most recent batch — the traced
    /// Featurize stage (the rest of the shard service is Inference).
    pub fn last_batch_featurize_us(&self) -> u64 {
        self.last_featurize_us
    }

    /// Convenience wrapper for a normal-lane batch of one.
    pub fn predict_one(&mut self, id: u64, time: i64) -> Result<QueuePrediction, TroutError> {
        self.predict_batch(&[PredictQuery::new(id, time)])
            .pop()
            .expect("one query in, one result out")
    }

    /// Drift-monitor state (for assertions and inspection).
    pub fn drift(&self) -> &DriftMonitor {
        &self.drift
    }

    /// The metrics registry as JSON: the serve sections, the drift-monitor
    /// join state, and the process-wide span histograms.
    pub fn metrics_json(&self) -> trout_std::json::Json {
        let mut members = match self.metrics.to_json() {
            Json::Obj(members) => members,
            _ => unreachable!("ServeMetrics::to_json returns an object"),
        };
        members.push(("drift".into(), self.drift.to_json()));
        members.push(("spans".into(), trout_obs::global().histograms_json()));
        Json::Obj(members)
    }

    /// The same registry in Prometheus text exposition format: the engine's
    /// own metrics followed by the process-wide span histograms.
    pub fn metrics_prometheus(&self) -> String {
        let mut text = self.metrics.to_prometheus();
        text.push_str(&trout_obs::global().to_prometheus());
        text
    }

    /// Arms durability against `dir`: every subsequent accepted event is
    /// journaled before it is applied, and a snapshot is written every
    /// `snapshot_every` journal appends (0 = journal only, full replay on
    /// recovery). The fsync policy comes from
    /// [`OnlineConfig::journal_fsync_every`].
    ///
    /// When `dir` already holds serve state, `recover` must be `true`: the
    /// snapshot (if any) is restored and the journal tail beyond its
    /// watermark is replayed, leaving this engine bit-identical to the one
    /// that crashed. Without `recover`, pre-existing state is refused rather
    /// than silently appended to — mixing two runs' histories in one
    /// journal would corrupt both.
    pub fn open_state_dir(
        &mut self,
        dir: &Path,
        snapshot_every: u64,
        recover: bool,
    ) -> Result<RecoveryReport, TroutError> {
        std::fs::create_dir_all(dir)?;
        let journal_path = dir.join(JOURNAL_FILE);
        let has_state = journal_path.exists() || dir.join(SNAPSHOT_FILE).exists();
        if has_state && !recover {
            return Err(TroutError::Config(format!(
                "state dir {} already holds serve state; pass --recover to resume from it \
                 (or point --state-dir at an empty directory)",
                dir.display()
            )));
        }
        let report = if recover && has_state {
            replay_journal(self, dir)?
        } else {
            RecoveryReport::default()
        };
        let mut journal = Journal::open(&journal_path, self.online_cfg.journal_fsync_every)?;
        if journal.appends() < report.snapshot_journal_pos {
            // The journal is empty behind the snapshot (power loss under
            // `--fsync-every 0`, or a torn-to-empty first append): the
            // snapshot was recovered as the durable truth, so repair the
            // journal base to its watermark — new appends must land at the
            // right absolute position.
            journal.reset_base(report.snapshot_journal_pos)?;
        }
        // Resume the snapshot cadence where the loaded snapshot left off.
        let since_snapshot = journal
            .appends()
            .saturating_sub(report.snapshot_journal_pos);
        self.durability = Some(Durability {
            journal,
            dir: dir.to_path_buf(),
            snapshot_every,
            since_snapshot,
            compact: self.compact_on_snapshot,
        });
        Ok(report)
    }

    /// Enables journal compaction: every snapshot write is followed by an
    /// atomic truncation of the entries the snapshot covers, bounding the
    /// state dir to one snapshot + one snapshot interval of journal tail.
    /// Takes effect at the next snapshot; legal to call before or after
    /// [`open_state_dir`](Self::open_state_dir) arms durability (the flag
    /// is ignored until it does).
    pub fn set_compaction(&mut self, on: bool) {
        if let Some(d) = self.durability.as_mut() {
            d.compact = on;
        }
        self.compact_on_snapshot = on;
    }

    /// Absolute journal watermark: events journaled since the journal was
    /// born (compacted-away entries included). 0 without a state dir.
    pub fn journal_position(&self) -> u64 {
        self.durability
            .as_ref()
            .map(|d| d.journal.appends())
            .unwrap_or(0)
    }

    /// Compaction base of the attached journal (0 without a state dir or
    /// before the first compaction).
    pub fn journal_base(&self) -> u64 {
        self.durability
            .as_ref()
            .map(|d| d.journal.base())
            .unwrap_or(0)
    }

    /// Installs a leader snapshot onto this follower engine at absolute
    /// journal position `pos`: restores the state payload, resets the local
    /// journal to base `pos` (entries the snapshot covers are the leader's
    /// compacted history — this follower never saw them), and writes a
    /// local snapshot so a follower crash recovers without re-fetching.
    pub fn install_snapshot(&mut self, state: &Json, pos: u64) -> Result<(), TroutError> {
        self.restore_state(state)?;
        {
            let Some(d) = self.durability.as_mut() else {
                return Err(TroutError::Config(
                    "install_snapshot: no state dir attached".into(),
                ));
            };
            d.journal.reset_base(pos)?;
            d.since_snapshot = 0;
        }
        self.write_snapshot()?;
        self.metrics.replication_snapshots_installed.inc();
        Ok(())
    }

    /// Whether a state dir is attached (journaling is live).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Mutable access to the online policy (the CLI sets the journal fsync
    /// knob here before arming durability; refit policy changes are legal
    /// any time between refits).
    pub fn online_config_mut(&mut self) -> &mut OnlineConfig {
        &mut self.online_cfg
    }

    /// Forces any buffered journal appends to disk (clean-shutdown path for
    /// relaxed fsync policies). No-op without a state dir.
    pub fn sync_journal(&mut self) -> Result<(), TroutError> {
        if let Some(d) = self.durability.as_mut() {
            d.journal.sync()?;
        }
        Ok(())
    }

    /// Appends one event line to the journal (policy-fsynced) before the
    /// caller applies it. No-op without a state dir or during replay; the
    /// closure keeps serialization off the no-journal fast path.
    fn journal_event(&mut self, line: impl FnOnce() -> String) -> Result<(), TroutError> {
        if self.replaying {
            return Ok(());
        }
        let Some(d) = self.durability.as_mut() else {
            return Ok(());
        };
        d.journal.append(&line()).map_err(|e| {
            TroutError::Io(std::io::Error::new(
                e.kind(),
                format!("journal append: {e}"),
            ))
        })?;
        d.since_snapshot += 1;
        self.metrics.journal_appends_total.inc();
        Ok(())
    }

    /// Writes a snapshot if one is due. Only ever called from the end of an
    /// event/batch application, so the serialized state is consistent and
    /// every journaled event up to the watermark is fully applied. A failed
    /// write is logged, not fatal — the journal remains authoritative.
    fn maybe_snapshot(&mut self) {
        let due = match &self.durability {
            Some(d) => {
                !self.replaying && d.snapshot_every > 0 && d.since_snapshot >= d.snapshot_every
            }
            None => false,
        };
        if !due {
            return;
        }
        if let Err(e) = self.write_snapshot() {
            trout_obs::log_warn!(
                "serve",
                "snapshot write failed (journal still authoritative): {e}"
            );
        }
    }

    /// Serializes the engine state and atomically replaces the snapshot
    /// file, fsyncing the journal first so the recorded watermark never
    /// points past the durable journal prefix.
    pub fn write_snapshot(&mut self) -> Result<(), TroutError> {
        if self.durability.is_none() {
            return Err(TroutError::Config(
                "write_snapshot: no state dir attached".into(),
            ));
        }
        let t = Instant::now();
        let state = self.state_to_json();
        let d = self.durability.as_mut().expect("checked above");
        d.journal.sync()?;
        let snap = Json::Obj(vec![
            ("journal_pos".to_string(), d.journal.appends().to_json()),
            ("state".to_string(), state),
        ]);
        atomic_write(&d.dir.join(SNAPSHOT_FILE), snap.to_string().as_bytes())?;
        d.since_snapshot = 0;
        if d.compact {
            // The snapshot just made durable covers every journal entry, so
            // truncate them all: the file collapses to one base control line
            // at the watermark. A crash between the snapshot rename and this
            // rename merely leaves the uncompacted journal — recovery skips
            // the covered prefix either way.
            let dropped = d.journal.compact()?;
            self.metrics.compactions_total.inc();
            self.metrics.compacted_lines_total.add(dropped);
        }
        self.metrics
            .snapshot_write_us
            .record(t.elapsed().as_micros() as u64);
        self.metrics.snapshots_total.inc();
        Ok(())
    }

    /// Suppresses journaling and snapshotting while recovery replays the
    /// journal tail (the events being applied are already in the journal).
    pub(crate) fn begin_replay(&mut self) {
        self.replaying = true;
    }

    pub(crate) fn end_replay(&mut self) {
        self.replaying = false;
    }

    /// The engine's complete deterministic state as one JSON value — the
    /// snapshot payload, and the object the recovery bit-identity tests
    /// compare byte for byte. Covers everything events mutate: the scaler,
    /// the runtime forest, the (possibly refitted) model weights, the
    /// incremental index, cached feature rows, the refit history window, the
    /// drift monitor (pending joins included), and the semantic counters
    /// (`state_events` drives the eviction cadence, so it *is* state).
    /// Observational metrics — latencies, batch sizes, request/error
    /// counts — depend on timing and batching and are deliberately absent.
    /// All maps serialize in sorted key order: identical states produce
    /// identical bytes.
    pub fn state_to_json(&self) -> Json {
        let mut rows: Vec<(u64, &Vec<f32>)> =
            self.cached_rows.iter().map(|(k, v)| (*k, v)).collect();
        rows.sort_by_key(|(id, _)| *id);
        let mut served: Vec<(u64, &QueuePrediction)> =
            self.drift.served.iter().map(|(k, v)| (*k, v)).collect();
        served.sort_by_key(|(id, _)| *id);
        Json::Obj(vec![
            ("version".to_string(), 1u64.to_json()),
            ("scaler".to_string(), ToJson::to_json(&self.scaler)),
            (
                "runtime_model".to_string(),
                ToJson::to_json(&self.runtime_model),
            ),
            ("model".to_string(), ToJson::to_json(self.model.as_ref())),
            ("index".to_string(), self.index.state_to_json()),
            (
                "cached_rows".to_string(),
                Json::Arr(
                    rows.iter()
                        .map(|(id, row)| Json::Arr(vec![id.to_json(), row.to_json()]))
                        .collect(),
                ),
            ),
            ("history_raw".to_string(), self.history_raw.to_json()),
            ("history_y".to_string(), self.history_y.to_json()),
            ("history_ids".to_string(), self.history_ids.to_json()),
            (
                "completed_since_refit".to_string(),
                (self.completed_since_refit as u64).to_json(),
            ),
            ("latest_time".to_string(), self.latest_time.to_json()),
            (
                "drift".to_string(),
                Json::Obj(vec![
                    (
                        "served".to_string(),
                        Json::Arr(
                            served
                                .iter()
                                .map(|(id, p)| Json::Arr(vec![id.to_json(), (*p).to_json()]))
                                .collect(),
                        ),
                    ),
                    ("joined".to_string(), self.drift.joined.to_json()),
                    ("abs_err_sum".to_string(), self.drift.abs_err_sum.to_json()),
                    ("within".to_string(), self.drift.within.to_json()),
                    (
                        "confusion".to_string(),
                        self.drift.confusion.to_vec().to_json(),
                    ),
                ]),
            ),
            (
                "counters".to_string(),
                Json::Obj(vec![
                    (
                        "predicts".to_string(),
                        self.metrics.predicts_total.get().to_json(),
                    ),
                    (
                        "state_events".to_string(),
                        self.metrics.state_events_total.get().to_json(),
                    ),
                    (
                        "refits".to_string(),
                        self.metrics.refits_total.get().to_json(),
                    ),
                ]),
            ),
        ])
    }

    /// Restores the state [`state_to_json`](Self::state_to_json) captured
    /// onto this (freshly constructed) engine. Inference and refit
    /// workspaces are rebuilt from the restored model; semantic counters
    /// are advanced to their captured values; the drift gauges are re-mirrored.
    pub fn restore_state(&mut self, j: &Json) -> Result<(), TroutError> {
        let version = u64::from_json_field(j.get("version"), "state.version")?;
        if version != 1 {
            return Err(TroutError::Config(format!(
                "unsupported snapshot version {version} (this build reads version 1)"
            )));
        }
        self.scaler = FromJson::from_json_field(j.get("scaler"), "state.scaler")?;
        self.runtime_model =
            FromJson::from_json_field(j.get("runtime_model"), "state.runtime_model")?;
        let model: HierarchicalModel = FromJson::from_json_field(j.get("model"), "state.model")?;
        self.index = IncrementalSnapshot::from_state_json(
            j.get("index")
                .ok_or_else(|| JsonError::new("missing field state.index"))?,
        )?;
        self.cached_rows =
            Vec::<(u64, Vec<f32>)>::from_json_field(j.get("cached_rows"), "state.cached_rows")?
                .into_iter()
                .collect();
        self.history_raw = FromJson::from_json_field(j.get("history_raw"), "state.history_raw")?;
        self.history_y = FromJson::from_json_field(j.get("history_y"), "state.history_y")?;
        self.history_ids = FromJson::from_json_field(j.get("history_ids"), "state.history_ids")?;
        self.completed_since_refit = u64::from_json_field(
            j.get("completed_since_refit"),
            "state.completed_since_refit",
        )? as usize;
        self.latest_time = i64::from_json_field(j.get("latest_time"), "state.latest_time")?;

        let drift = j
            .get("drift")
            .ok_or_else(|| JsonError::new("missing field state.drift"))?;
        self.drift.served = Vec::<(u64, QueuePrediction)>::from_json_field(
            drift.get("served"),
            "state.drift.served",
        )?
        .into_iter()
        .collect();
        self.drift.joined = u64::from_json_field(drift.get("joined"), "state.drift.joined")?;
        self.drift.abs_err_sum =
            f64::from_json_field(drift.get("abs_err_sum"), "state.drift.abs_err_sum")?;
        self.drift.within = u64::from_json_field(drift.get("within"), "state.drift.within")?;
        let confusion =
            Vec::<u64>::from_json_field(drift.get("confusion"), "state.drift.confusion")?;
        if confusion.len() != 4 {
            return Err(TroutError::Config(format!(
                "state.drift.confusion has {} cells, expected 4",
                confusion.len()
            )));
        }
        self.drift.confusion.copy_from_slice(&confusion);

        self.scratch = model.scratch(64);
        self.refit_scratch = RefitScratch::for_model(&model);
        self.model = Arc::new(model);
        self.rebuild_packed();

        let counters = j
            .get("counters")
            .ok_or_else(|| JsonError::new("missing field state.counters"))?;
        restore_counter(
            &self.metrics.predicts_total,
            u64::from_json_field(counters.get("predicts"), "state.counters.predicts")?,
        );
        restore_counter(
            &self.metrics.state_events_total,
            u64::from_json_field(counters.get("state_events"), "state.counters.state_events")?,
        );
        restore_counter(
            &self.metrics.refits_total,
            u64::from_json_field(counters.get("refits"), "state.counters.refits")?,
        );
        restore_counter(&self.metrics.drift_joined_total, self.drift.joined);
        restore_counter(&self.metrics.drift_within_2x_total, self.drift.within);
        for (c, &v) in self
            .metrics
            .drift_confusion
            .iter()
            .zip(&self.drift.confusion)
        {
            restore_counter(c, v);
        }
        self.metrics.drift_mae_min.set(self.drift.mae_min());
        self.metrics.drift_within_2x.set(self.drift.within_2x());
        self.metrics
            .drift_pending_joins
            .set(self.drift.served.len() as f64);
        Ok(())
    }

    /// Assembles and scales the feature row a pending job observes at
    /// `time`, writing it into `row` (resized to `N_FEATURES`). On the
    /// steady-state path — the job's raw row already cached — the call is
    /// allocation-free: O(1) snapshot read, in-place assembly, in-place
    /// scaling. The first predict of a job still clones the raw row into
    /// the refit cache.
    fn featurize_pending_into(
        &mut self,
        id: u64,
        time: i64,
        row: &mut Vec<f32>,
    ) -> Result<(), TroutError> {
        let job = self
            .index
            .job(id)
            .ok_or_else(|| TroutError::Protocol(format!("predict: unknown job id {id}")))?;
        if job.phase != JobPhase::Pending {
            return Err(TroutError::Protocol(format!(
                "predict: job {id} is no longer pending"
            )));
        }
        let rec = job.rec.clone();
        let pred_runtime = job.pred_runtime_min;
        let probe = SnapshotProbe {
            time,
            partition: rec.partition,
            user: rec.user,
            priority: rec.priority,
            exclude_id: Some(id),
        };
        let snap = if self.scan_featurize {
            self.index.snapshot_scan(&probe)
        } else {
            self.index.snapshot(&probe)
        };
        let part = &self.cluster.partitions[rec.partition as usize];
        row.clear();
        row.resize(N_FEATURES, 0.0);
        assemble_row_into(&rec, part, &snap, pred_runtime, row);
        if !self.cached_rows.contains_key(&id) && self.cached_rows.len() < CACHED_ROWS_MAX {
            self.cached_rows.insert(id, row.clone());
        }
        self.scaler.transform_row(row);
        Ok(())
    }

    fn note_event(&mut self, time: i64) {
        self.latest_time = self.latest_time.max(time);
        if self.metrics.state_events_total.inc() % EVICT_EVERY == 0 {
            let mut purged = 0u64;
            for id in self.index.evict_finished_before(self.latest_time) {
                self.cached_rows.remove(&id);
                if self.drift.served.remove(&id).is_some() {
                    purged += 1;
                }
            }
            if purged > 0 {
                self.metrics.drift_purged_total.add(purged);
                self.metrics
                    .drift_pending_joins
                    .set(self.drift.served.len() as f64);
            }
        }
    }

    fn push_history(&mut self, id: u64, raw: Vec<f32>, y: f32) {
        self.history_raw.push(raw);
        self.history_y.push(y);
        self.history_ids.push(id);
        // The refit window only ever looks at the tail, so the buffers stay
        // bounded at twice the window (amortized O(1) drain).
        let cap = self.online_cfg.window.max(1);
        if self.history_y.len() > 2 * cap {
            let cut = self.history_y.len() - cap;
            self.history_raw.drain(..cut);
            self.history_y.drain(..cut);
            self.history_ids.drain(..cut);
        }
    }

    /// Warm-start refit: train a clone on the completed-job history and
    /// publish it atomically.
    fn maybe_refit(&mut self) {
        if self.refit_every == 0 || self.completed_since_refit < self.refit_every {
            return;
        }
        let n = self.history_y.len();
        let mut flat = Vec::with_capacity(n * N_FEATURES);
        for row in &self.history_raw {
            flat.extend_from_slice(row);
        }
        let raw = Matrix::from_vec(n, N_FEATURES, flat);
        let x = self.scaler.transform(&raw);
        let ds = Dataset {
            x,
            raw,
            y_queue_min: self.history_y.clone(),
            ids: self.history_ids.clone(),
            scaler: self.scaler.clone(),
        };
        let rows: Vec<usize> = (0..n).collect();
        let mut next = (*self.model).clone();
        let _span = trout_obs::span!("serve.refit");
        update_model_in(
            &mut next,
            &self.base_cfg,
            &self.online_cfg,
            &ds,
            &rows,
            &mut self.refit_scratch,
        );
        self.model = Arc::new(next);
        self.rebuild_packed();
        let refits = self.metrics.refits_total.inc();
        self.completed_since_refit = 0;
        trout_obs::log_debug!(
            "serve",
            "refit #{refits} published on {n} completed jobs (drift mae {:.2} min over {} joins)",
            self.drift.mae_min(),
            self.drift.joined()
        );
    }
}

/// Advances a monotonic counter to `target` (counters expose `inc`/`add`
/// only; restore happens on a fresh engine, so the delta is the target).
fn restore_counter(c: &trout_obs::Counter, target: u64) {
    c.add(target.saturating_sub(c.get()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use trout_features::incremental::{trace_events, ReplayEvent};

    fn small_engine(refit_every: usize) -> (ServeEngine, Trace) {
        let cfg = ServeConfig {
            refit_every,
            seed: 7,
            ..Default::default()
        };
        let engine = ServeEngine::bootstrap(400, &cfg);
        // A fresh trace the engine has never seen, replayed as live events.
        let live = SimulationBuilder::anvil_like().jobs(300).seed(8).run();
        (engine, live)
    }

    #[test]
    fn submit_predict_lifecycle() {
        let (mut engine, live) = small_engine(0);
        let rec = live.records[0].clone();
        let id = rec.id;
        let t = rec.submit_time;
        engine.apply_submit(rec).unwrap();
        let p = engine.predict_one(id, t).unwrap();
        assert!(p.quick_proba.is_finite() && (0.0..=1.0).contains(&p.quick_proba));
        assert!(p.calibrated_proba.is_finite());

        // Unknown ids and non-pending jobs are per-query protocol errors.
        assert!(matches!(
            engine.predict_one(999_999, t),
            Err(TroutError::Protocol(_))
        ));
        engine.apply_start(id, t + 60).unwrap();
        assert!(matches!(
            engine.predict_one(id, t + 61),
            Err(TroutError::Protocol(_))
        ));
    }

    #[test]
    fn batch_reports_per_query_errors_in_place() {
        let (mut engine, live) = small_engine(0);
        let a = live.records[0].clone();
        let b = live.records[1].clone();
        let t = b.submit_time;
        engine.apply_submit(a.clone()).unwrap();
        engine.apply_submit(b.clone()).unwrap();
        let out = engine.predict_batch(&[
            PredictQuery::new(a.id, t),
            PredictQuery::new(424_242, t),
            PredictQuery::new(b.id, t),
        ]);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_ok() && out[2].is_ok());
        assert!(out[1].is_err());
        assert_eq!(engine.metrics.predicts_total.get(), 2);
        assert_eq!(engine.metrics.batches_total.get(), 1);
    }

    #[test]
    fn drift_monitor_joins_a_prediction_with_its_outcome() {
        let (mut engine, live) = small_engine(0);
        let rec = live.records[0].clone();
        let (id, t, elig) = (rec.id, rec.submit_time, rec.eligible_time);
        engine.apply_submit(rec).unwrap();
        let p = engine.predict_one(id, t).unwrap();
        assert_eq!(engine.drift().joined(), 0, "no outcome yet");

        // 20 minutes of realized queue time close the pair.
        let start = elig + 1200;
        engine.apply_start(id, start).unwrap();
        assert_eq!(engine.drift().joined(), 1);
        let realized = ((start - elig) as f64 / 60.0) as f32;
        let expected = (p.as_minutes() as f64 - realized as f64).abs();
        assert_eq!(engine.drift().mae_min(), expected, "single-pair MAE");
        assert_eq!(engine.drift().confusion().iter().sum::<u64>(), 1);
        assert_eq!(engine.metrics.drift_joined_total.get(), 1);
        assert_eq!(engine.metrics.drift_mae_min.get(), expected);

        // The metrics dump carries drift and span sections, and the
        // Prometheus exposition carries the drift series.
        let dump = engine.metrics_json();
        assert_eq!(
            dump.get("drift").and_then(|d| d.get("joined")),
            Some(&trout_std::json::Json::Int(1))
        );
        assert!(dump.get("spans").is_some());
        let prom = engine.metrics_prometheus();
        assert!(prom.contains("trout_serve_drift_joined_total 1"));
        assert!(prom.contains("trout_serve_drift_mae_min"));
    }

    #[test]
    fn cancelled_pending_job_never_joins_the_drift_monitor() {
        let (mut engine, live) = small_engine(0);
        let rec = live.records[0].clone();
        let (id, t) = (rec.id, rec.submit_time);
        engine.apply_submit(rec).unwrap();
        engine.predict_one(id, t).unwrap();
        // `end` while still pending = cancellation: no realized queue time.
        engine.apply_end(id, t + 500).unwrap();
        assert_eq!(engine.drift().joined(), 0);
        assert!(engine.drift.served.is_empty(), "served entry dropped");
    }

    #[test]
    fn repredicted_job_joins_with_the_latest_answer_only() {
        let (mut engine, live) = small_engine(0);
        let rec = live.records[0].clone();
        let (id, t, elig) = (rec.id, rec.submit_time, rec.eligible_time);
        engine.apply_submit(rec).unwrap();
        engine.predict_one(id, t).unwrap();
        let p2 = engine.predict_one(id, t + 30).unwrap();
        let start = elig + 3600;
        engine.apply_start(id, start).unwrap();
        assert_eq!(engine.drift().joined(), 1, "one join despite two predicts");
        let realized = ((start - elig) as f64 / 60.0) as f32;
        let expected = (p2.as_minutes() as f64 - realized as f64).abs();
        assert_eq!(
            engine.drift().mae_min(),
            expected,
            "joined against the latest served answer"
        );
    }

    #[test]
    fn long_lived_job_ending_on_an_eviction_sweep_still_trains() {
        let (mut engine, live) = small_engine(0);
        let mut long = live.records[0].clone();
        long.id = 500_000;
        long.submit_time = 0;
        long.eligible_time = 0;
        let id = long.id;
        engine.apply_submit(long).unwrap();
        engine.predict_one(id, 0).unwrap();
        engine.apply_start(id, 600).unwrap();
        // Filler submits land the long job's `end` exactly on the
        // EVICT_EVERY-th state event, two days after its submission — the
        // sweep inside apply_end evicts the job in the same call that needs
        // its realized queue time.
        let t_late = 2 * 86_400;
        for k in 0..(EVICT_EVERY - 3) {
            let mut r = live.records[1].clone();
            r.id = 600_000 + k;
            r.submit_time = t_late;
            r.eligible_time = t_late;
            engine.apply_submit(r).unwrap();
        }
        engine.apply_end(id, t_late + 1).unwrap();
        assert!(engine.index().job(id).is_none(), "long job was evicted");
        assert_eq!(
            engine.history_y.len(),
            1,
            "label must be captured before the eviction sweep"
        );
        assert!((engine.history_y[0] - 10.0).abs() < 1e-6, "600 s queued");
    }

    #[test]
    fn evicted_pending_join_decrements_the_gauge_and_counts_a_purge() {
        let (mut engine, live) = small_engine(0);
        // Cancellation purge: a predicted job that ends while still pending
        // has no outcome to join — its pending join must drop from the
        // gauge and count as purged.
        let rec = live.records[0].clone();
        let (id, t) = (rec.id, rec.submit_time);
        engine.apply_submit(rec).unwrap();
        engine.predict_one(id, t).unwrap();
        assert_eq!(engine.metrics.drift_pending_joins.get(), 1.0);
        engine.apply_end(id, t + 10).unwrap();
        assert_eq!(engine.metrics.drift_pending_joins.get(), 0.0);
        assert_eq!(engine.metrics.drift_purged_total.get(), 1);

        // Eviction-sweep purge (the safety net): a stale served entry for a
        // job that already finished is dropped — and accounted — when the
        // sweep evicts the job.
        let mut done = live.records[1].clone();
        done.id = 500_001;
        done.submit_time = 0;
        done.eligible_time = 0;
        let did = done.id;
        engine.apply_submit(done).unwrap();
        engine.apply_start(did, 600).unwrap();
        engine.apply_end(did, 700).unwrap();
        engine.drift.served.insert(
            did,
            QueuePrediction {
                estimate: QueueEstimate::Minutes(5.0),
                quick_proba: 0.1,
                calibrated_proba: 0.1,
                minutes: Some(5.0),
                cutoff_min: 10.0,
                lane: trout_core::Lane::Normal,
            },
        );
        engine.metrics.drift_pending_joins.set(1.0);
        // Filler submits two days later push the event count onto the next
        // EVICT_EVERY boundary, where the sweep evicts the finished job.
        let t_late = 2 * 86_400;
        let need = EVICT_EVERY - (engine.metrics.state_events_total.get() % EVICT_EVERY);
        for k in 0..need {
            let mut r = live.records[2].clone();
            r.id = 600_000 + k;
            r.submit_time = t_late;
            r.eligible_time = t_late;
            engine.apply_submit(r).unwrap();
        }
        assert!(engine.index().job(did).is_none(), "finished job evicted");
        assert_eq!(engine.metrics.drift_pending_joins.get(), 0.0);
        assert_eq!(engine.metrics.drift_purged_total.get(), 2);
        // The purge is observational only: never part of the state oracle.
        assert!(engine.state_to_json().get("drift_purged").is_none());
    }

    #[test]
    fn packed_f32_predictions_track_the_exact_path() {
        let cfg_exact = ServeConfig {
            refit_every: 0,
            seed: 7,
            ..Default::default()
        };
        let cfg_packed = ServeConfig {
            infer_f32: true,
            ..cfg_exact.clone()
        };
        let mut exact = ServeEngine::bootstrap(400, &cfg_exact);
        let mut packed = ServeEngine::bootstrap(400, &cfg_packed);
        assert!(packed.infer_f32() && !exact.infer_f32());
        let live = SimulationBuilder::anvil_like().jobs(60).seed(8).run();
        let mut compared = 0usize;
        for rec in live.records.iter().take(40) {
            let (id, t) = (rec.id, rec.submit_time);
            exact.apply_submit(rec.clone()).unwrap();
            packed.apply_submit(rec.clone()).unwrap();
            let pe = exact.predict_one(id, t).unwrap();
            let pp = packed.predict_one(id, t).unwrap();
            // The packed path reassociates (folded batch norm, f32 dot
            // order), so probabilities agree to a tolerance rather than
            // bit-for-bit; decisions may only flip inside that band of 0.5.
            assert!(
                (pe.quick_proba - pp.quick_proba).abs() < 1e-3,
                "job {id}: proba {} vs packed {}",
                pe.quick_proba,
                pp.quick_proba
            );
            if matches!(pe.estimate, QueueEstimate::QuickStart)
                != matches!(pp.estimate, QueueEstimate::QuickStart)
            {
                assert!(
                    (pe.quick_proba - 0.5).abs() < 1e-3,
                    "job {id}: decision flipped away from the 0.5 boundary"
                );
            }
            if let (Some(me), Some(mp)) = (pe.minutes, pp.minutes) {
                assert!(
                    (me - mp).abs() <= 1e-2 * (1.0 + me.abs()),
                    "job {id}: minutes {me} vs packed {mp}"
                );
            }
            compared += 1;
        }
        assert_eq!(compared, 40);
        // Packed is derived state only: both engines serialize identical
        // authoritative state modulo the drift monitor's served answers
        // (which legitimately differ in the low bits).
        let je = exact.state_to_json();
        let jp = packed.state_to_json();
        assert_eq!(
            je.get("model").map(|m| m.to_string()),
            jp.get("model").map(|m| m.to_string()),
            "packed mode must not alter the authoritative model"
        );
        assert_eq!(
            je.get("index").map(|m| m.to_string()),
            jp.get("index").map(|m| m.to_string()),
            "packed mode must not alter the incremental index"
        );
    }

    #[test]
    fn replay_with_refits_hot_swaps_the_model() {
        let (mut engine, live) = small_engine(16);
        let model_before = engine.model();
        let mut predicted = 0usize;
        for (i, (_, ev)) in trace_events(&live).iter().enumerate() {
            match *ev {
                ReplayEvent::Submit(r) => {
                    let rec = live.records[r].clone();
                    let (id, t) = (rec.id, rec.submit_time);
                    engine.apply_submit(rec).unwrap();
                    if i % 3 == 0 {
                        engine.predict_one(id, t).unwrap();
                        predicted += 1;
                    }
                }
                ReplayEvent::Start(r) => {
                    let rec = &live.records[r];
                    engine.apply_start(rec.id, rec.start_time).unwrap();
                }
                ReplayEvent::End(r) => {
                    let rec = &live.records[r];
                    engine.apply_end(rec.id, rec.end_time).unwrap();
                }
            }
        }
        assert!(predicted > 50);
        assert!(
            engine.metrics.refits_total.get() >= 1,
            "expected at least one refit, metrics: {:?}",
            engine.metrics.refits_total.get()
        );
        assert!(
            !Arc::ptr_eq(&model_before, &engine.model()),
            "refit must publish a new model"
        );
        // The refitted model still predicts sanely.
        let mut rec = live.records[0].clone();
        rec.id = 1_000_000;
        rec.submit_time += 1_000_000;
        rec.eligible_time = rec.submit_time;
        let (id, t) = (rec.id, rec.submit_time);
        engine.apply_submit(rec).unwrap();
        let p = engine.predict_one(id, t).unwrap();
        assert!(p.quick_proba.is_finite());
    }
}
