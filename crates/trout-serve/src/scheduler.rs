//! The SLO scheduler: latency-budget algebra and admission control.
//!
//! PRs 1–6 flushed the predict micro-batch on the next non-predict line —
//! batch fill was an accident of client interleaving. This module gives the
//! batch former an explicit policy (DESIGN §12):
//!
//! * every predict carries a **latency budget** — explicit `deadline_ms`
//!   from a v2 client, or its lane's configured default — fixing an
//!   absolute flush deadline at admission;
//! * the batch former holds execution until the **tightest deadline in the
//!   queue** forces a flush, maximizing batch fill under the budget;
//! * when a lane's queued depth already exceeds what its budget can absorb,
//!   the **admission controller** sheds the request with a typed
//!   [`TroutError::Overloaded`](trout_core::TroutError) carrying
//!   `retry_after_ms` — queueing it would be a guaranteed SLO violation.
//!
//! All arithmetic uses a *configured* per-prediction cost estimate
//! (`est_predict_us`), never a measured one: admission decisions must be a
//! pure function of (config, queue depths), so a test driving the scheduler
//! under a [`ManualClock`](trout_std::clock::ManualClock) replays
//! bit-for-bit at any machine speed.

use std::sync::atomic::{AtomicU64, Ordering};

use trout_core::{Deadline, Lane};

/// Tunables for the batch former and admission controller. One instance is
/// shared by every session of a [`ShardSet`](crate::ShardSet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Default latency budget per lane in milliseconds, [`Lane::rank`]
    /// order (urgent / normal / batch). Applied when a predict names no
    /// `deadline_ms`.
    pub default_deadline_ms: [u64; 3],
    /// Configured cost estimate of one prediction, microseconds. Drives
    /// both the hold-time calculation (how long the former may keep
    /// coalescing before the tightest deadline is at risk) and the
    /// admission threshold (how much queued work a budget can absorb).
    pub est_predict_us: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            default_deadline_ms: [50, 500, 5000],
            est_predict_us: 150,
        }
    }
}

impl SchedulerConfig {
    /// The effective budget of a request in microseconds: the explicit
    /// deadline when present, the lane default otherwise.
    pub fn budget_us(&self, lane: Lane, explicit: Option<Deadline>) -> u64 {
        match explicit {
            Some(d) => d.as_micros(),
            None => self.default_deadline_ms[lane.rank()].saturating_mul(1_000),
        }
    }

    /// How many *already queued* predictions a budget can wait behind and
    /// still finish inside the budget: `budget/est - 1` (one slot is the
    /// request itself). Saturates at zero for budgets below one estimate.
    pub fn max_queue_ahead(&self, budget_us: u64) -> u64 {
        let est = self.est_predict_us.max(1);
        (budget_us / est).saturating_sub(1)
    }
}

/// Shared per-lane queue-depth accounting and the shed decision.
///
/// Depths are global across sessions and shards of one
/// [`ShardSet`](crate::ShardSet) — the budget a request competes for is the
/// whole daemon's capacity, not one connection's. A request is counted from
/// admission until its flush completes.
///
/// The **budget algebra** is lane-aware: a lane only waits behind work of
/// equal or higher priority, because flush order is (lane rank, arrival).
/// So urgent admission counts only urgent depth; normal counts urgent +
/// normal; batch counts everything.
#[derive(Debug, Default)]
pub struct AdmissionControl {
    depths: [AtomicU64; 3],
}

impl AdmissionControl {
    /// An empty controller.
    pub fn new() -> AdmissionControl {
        AdmissionControl::default()
    }

    /// Queued work a new request in `lane` would wait behind: the summed
    /// depth of every lane of equal or higher priority.
    pub fn work_ahead(&self, lane: Lane) -> u64 {
        self.depths[..=lane.rank()]
            .iter()
            .map(|d| d.load(Ordering::SeqCst))
            .sum()
    }

    /// Current queued depth of one lane.
    pub fn depth(&self, lane: Lane) -> u64 {
        self.depths[lane.rank()].load(Ordering::SeqCst)
    }

    /// Admits or sheds one request. On admit, the lane's depth is
    /// incremented and the caller owes exactly one [`release`] after the
    /// flush. On shed, returns the suggested client back-off: the time for
    /// the excess queued work to drain at the configured cost estimate
    /// (minimum 1 ms so a client never spins on `retry_after_ms: 0`).
    ///
    /// [`release`]: AdmissionControl::release
    pub fn try_admit(&self, cfg: &SchedulerConfig, lane: Lane, budget_us: u64) -> Result<(), u64> {
        let ahead = self.work_ahead(lane);
        let max_ahead = cfg.max_queue_ahead(budget_us);
        if ahead > max_ahead {
            let excess = ahead - max_ahead;
            let retry_after_ms = (excess.saturating_mul(cfg.est_predict_us) / 1_000).max(1);
            return Err(retry_after_ms);
        }
        self.depths[lane.rank()].fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Returns one admitted request's slot after its flush completed.
    pub fn release(&self, lane: Lane) {
        let prev = self.depths[lane.rank()].fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "release without matching admit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_default_per_lane_and_honor_explicit_deadlines() {
        let cfg = SchedulerConfig::default();
        assert_eq!(cfg.budget_us(Lane::Urgent, None), 50_000);
        assert_eq!(cfg.budget_us(Lane::Normal, None), 500_000);
        assert_eq!(cfg.budget_us(Lane::Batch, None), 5_000_000);
        assert_eq!(
            cfg.budget_us(Lane::Batch, Some(Deadline::ms(20))),
            20_000,
            "explicit deadline wins over the lane default"
        );
    }

    #[test]
    fn max_queue_ahead_reserves_a_slot_for_the_request_itself() {
        let cfg = SchedulerConfig {
            default_deadline_ms: [50, 500, 5000],
            est_predict_us: 100,
        };
        assert_eq!(cfg.max_queue_ahead(1_000), 9);
        assert_eq!(cfg.max_queue_ahead(100), 0);
        assert_eq!(cfg.max_queue_ahead(99), 0, "saturates, never underflows");
    }

    #[test]
    fn admission_is_lane_aware() {
        let cfg = SchedulerConfig {
            default_deadline_ms: [50, 500, 5000],
            est_predict_us: 100_000, // 0.1 s per predict: tiny caps
        };
        let ac = AdmissionControl::new();
        // Normal budget 0.5 s => absorbs 4 queued ahead. Fill it.
        let normal_budget = cfg.budget_us(Lane::Normal, None);
        for _ in 0..5 {
            ac.try_admit(&cfg, Lane::Normal, normal_budget).unwrap();
        }
        let retry = ac.try_admit(&cfg, Lane::Normal, normal_budget).unwrap_err();
        assert!(retry >= 1, "shed carries a positive retry hint");
        // Urgent ignores normal depth: only urgent work is ahead of it.
        assert_eq!(ac.work_ahead(Lane::Urgent), 0);
        ac.try_admit(&cfg, Lane::Urgent, 10_000_000).unwrap();
        // Batch waits behind everything admitted so far.
        assert_eq!(ac.work_ahead(Lane::Batch), 6);
        // Released slots reopen admission.
        for _ in 0..5 {
            ac.release(Lane::Normal);
        }
        ac.try_admit(&cfg, Lane::Normal, normal_budget).unwrap();
        assert_eq!(ac.depth(Lane::Normal), 1);
    }

    #[test]
    fn retry_hint_scales_with_excess_depth() {
        let cfg = SchedulerConfig {
            default_deadline_ms: [50, 500, 5000],
            est_predict_us: 1_000, // 1 ms each
        };
        let ac = AdmissionControl::new();
        for _ in 0..30 {
            ac.try_admit(&cfg, Lane::Urgent, 1_000_000).unwrap();
        }
        // Budget 10 ms absorbs 9 ahead; 30 queued => 21 excess => 21 ms.
        let retry = ac.try_admit(&cfg, Lane::Urgent, 10_000).unwrap_err();
        assert_eq!(retry, 21);
    }
}
