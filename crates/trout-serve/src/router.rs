//! The router session: one client's request stream against a [`ShardSet`].
//!
//! Every transport (stdin, thread-per-connection TCP, the reactor) drives a
//! [`RouterSession`] per client. The session queues predicts into per-shard
//! queues, remembering each query's **position** in the coalesced window; a
//! flush fans out one `predict_batch` per non-empty shard queue and re-pairs
//! the results positionally, so the client sees exactly one response line
//! per request line, in request order — the wire protocol cannot tell how
//! many shards sit behind it.
//!
//! Since PR 7 the window is scheduled, not incidental (DESIGN §12): each
//! predict is checked against the daemon-wide
//! [`AdmissionControl`](crate::scheduler::AdmissionControl) on arrival — a
//! shed becomes a pre-resolved window slot answered with a typed
//! `overloaded` + `retry_after_ms` *at flush time*, preserving strict
//! request-order responses. Admitted predicts carry their latency budget;
//! [`RouterSession::due_at`] tells deadline-aware transports (the reactor)
//! how long the window may keep coalescing before the tightest deadline,
//! minus the estimated drain time, forces a flush. At flush, each shard's
//! batch executes in (priority-lane rank, arrival) order — urgent first —
//! which is byte-safe because inference is row-independent.
//!
//! Lifecycle events broadcast to every shard in shard order (see the
//! [`shard`](crate::shard) module docs for why). The response comes from
//! shard 0; the other shards' results are replicas of the same deterministic
//! application and are debug-asserted to agree.
//!
//! Pairing keeps PR 5's no-silence guarantee, generalized across shards: if
//! a shard's batch ever answers fewer queries than it was asked (a broken
//! `predict_batch` invariant), the unpaired positions get an explicit error
//! response instead of leaving the client hanging on a line that will never
//! come.

use std::io::Write;

use trout_core::{Deadline, QueuePrediction, TroutError};
use trout_obs::trace::{Stage, TraceRecord, N_STAGES, RING_CAP};
use trout_std::rng::SplitMix64;

use crate::engine::PredictQuery;
use crate::protocol::{
    ack_response, error_response, metrics_prometheus_response, metrics_response, parse_event,
    prediction_response, promote_response, state_dump_response, trace_response, ClientEvent,
    MetricsFormat,
};
use crate::shard::ShardSet;

/// Seed of the per-session trace-id stream. Hermetic and deterministic: a
/// replayed session mints the same ids in the same order, and ids never
/// feed back into scheduling (DESIGN §14).
const TRACE_ID_SEED: u64 = 0x7472_6f75_745f_7472; // "trout_tr"

/// How many recent traces an error-triggered flight-recorder dump emits
/// per shard (bounded so a shed storm cannot flood stderr).
const FLIGHT_DUMP_LAST: usize = 8;

/// What the transport should do after a handled line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep reading.
    Continue,
    /// The client asked for `shutdown`; the ack is already written.
    Shutdown,
}

/// One admitted predict: its position in the current coalescing window plus
/// the query and its scheduling envelope.
#[derive(Debug, Clone, Copy)]
struct QueuedPredict {
    pos: usize,
    id: u64,
    time: i64,
    lane: trout_core::Lane,
    /// Admission instant ([`Clock::now_micros`](trout_std::clock::Clock)).
    enq_us: u64,
    /// Effective latency budget in microseconds (explicit or lane default).
    budget_us: u64,
    /// Whether the request used the v2 envelope (controls the lane echo).
    v2: bool,
    /// Whether the request opted into tracing (`"trace":true`, v2 only).
    traced: bool,
    /// The minted trace id (meaningless unless `traced`).
    trace_id: u64,
    /// Accept → enqueue duration (µs): line read, parse, admission check.
    parse_us: u64,
}

/// Per-shard stage stamps taken while the shard guard was held, shared by
/// every traced query of that shard's batch.
#[derive(Debug, Clone, Copy)]
struct ShardStamp {
    shard: usize,
    /// Instant the shard lock was acquired (flush start + admission wait).
    lock_us: u64,
    /// Instant `predict_batch` returned.
    done_us: u64,
    /// Engine-reported feature-assembly total for the batch.
    featurize_us: u64,
}

/// Everything a traced window slot needs to finish its [`TraceRecord`]
/// when the response is written.
#[derive(Debug, Clone, Copy)]
struct TraceStamp {
    trace_id: u64,
    lane_rank: u8,
    parse_us: u64,
    enq_us: u64,
    /// Batch-form hold: enqueue → flush start.
    hold_us: u64,
    /// Admission wait: flush start → shard lock acquired.
    admission_us: u64,
    featurize_us: u64,
    /// Shard-service remainder after featurize (kernel + bookkeeping).
    inference_us: u64,
    /// Instant the shard finished (backlog stage starts here).
    done_us: u64,
    shard: usize,
}

/// One window position's resolution at flush time.
enum Slot {
    /// Shed at admission; answered with `overloaded` when the window
    /// flushes so responses stay in strict request order.
    Shed { retry_after_ms: u64 },
    /// Answered by a shard's batch.
    Done {
        id: u64,
        v2: bool,
        result: Result<QueuePrediction, TroutError>,
        /// Present when the request opted into tracing.
        trace: Option<TraceStamp>,
    },
}

/// Per-client routing state: per-shard predict queues, the coalescing
/// window position counter, pre-resolved shed slots, and the tightest
/// deadline currently queued.
pub struct RouterSession {
    per_shard: Vec<Vec<QueuedPredict>>,
    /// Window positions issued (admitted + shed) — the response count a
    /// flush owes.
    window: usize,
    /// Admitted predicts queued (drives the batch cap).
    queued: usize,
    /// Pre-resolved shed positions: `(pos, retry_after_ms)`.
    shed: Vec<(usize, u64)>,
    batch_max: usize,
    /// Earliest absolute deadline (µs) among queued predicts.
    min_deadline_us: u64,
    /// Whether any queued predict came from a v1 client. v1 clients predate
    /// deadline-holding, so their windows stay due-on-drain (PR 6 timing).
    has_v1: bool,
    /// Hermetic per-session trace-id stream (DESIGN §14).
    rng: SplitMix64,
    /// One flight-recorder dump per session per trigger class, so a
    /// misbehaving client cannot flood stderr.
    shed_dumped: bool,
    protocol_dumped: bool,
}

impl RouterSession {
    /// A session against an `n_shards`-wide set, flushing at `batch_max`
    /// queued predicts.
    pub fn new(n_shards: usize, batch_max: usize) -> RouterSession {
        RouterSession {
            per_shard: (0..n_shards.max(1)).map(|_| Vec::new()).collect(),
            window: 0,
            queued: 0,
            shed: Vec::new(),
            batch_max: batch_max.max(1),
            min_deadline_us: u64::MAX,
            has_v1: false,
            rng: SplitMix64::new(TRACE_ID_SEED),
            shed_dumped: false,
            protocol_dumped: false,
        }
    }

    /// Admitted predicts currently queued (across all shards).
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Window positions awaiting a response (admitted + shed).
    pub fn pending(&self) -> usize {
        self.window
    }

    /// The absolute instant (µs on the set's clock) the current window must
    /// flush: the tightest queued deadline minus the estimated time to
    /// drain the queue, so the last prediction still lands inside its
    /// budget. `None` when nothing is pending. Windows holding a shed (owed
    /// an answer now) or any v1 predict (pre-deadline clients keep PR 6
    /// flush-on-drain timing) are due immediately.
    pub fn due_at(&self, shards: &ShardSet) -> Option<u64> {
        if self.window == 0 {
            return None;
        }
        if !self.shed.is_empty() || self.has_v1 {
            return Some(0);
        }
        let drain = (self.queued as u64).saturating_mul(shards.scheduler().est_predict_us);
        Some(self.min_deadline_us.saturating_sub(drain))
    }

    /// Flushes when [`RouterSession::due_at`] has arrived on the set's
    /// clock. Returns whether a flush happened.
    pub fn flush_if_due<W: Write>(
        &mut self,
        shards: &ShardSet,
        out: &mut W,
    ) -> Result<bool, TroutError> {
        match self.due_at(shards) {
            Some(t) if shards.clock().now_micros() >= t => {
                self.flush(shards, out)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Handles one non-empty request line: queues a predict (flushing at the
    /// batch cap), or flushes then applies/answers anything else. Responses
    /// are written to `out` but not flushed to the OS — transports flush
    /// when their write boundary arrives (end of readable burst, end of
    /// line loop).
    pub fn handle_line<W: Write>(
        &mut self,
        shards: &ShardSet,
        line: &str,
        out: &mut W,
    ) -> Result<Flow, TroutError> {
        shards.metrics0().requests_total.inc();
        // Accept instant: anchors the parse stage of a traced request.
        let accept_us = shards.clock().now_micros();
        match parse_event(line) {
            Ok(ClientEvent::Predict {
                id,
                time,
                lane,
                deadline_ms,
                v2,
                trace,
            }) => {
                let cfg = shards.scheduler();
                let budget_us = cfg.budget_us(lane, deadline_ms.map(Deadline::ms));
                match shards.admission().try_admit(cfg, lane, budget_us) {
                    Err(retry_after_ms) => {
                        // Shed: resolved now, answered at flush so the
                        // one-response-per-line order holds. Sheds do not
                        // count toward the batch cap (no work queued).
                        shards.metrics0().record_shed(lane);
                        if !self.shed_dumped {
                            self.shed_dumped = true;
                            shards.flight_dump("shed", FLIGHT_DUMP_LAST);
                        }
                        self.shed.push((self.window, retry_after_ms));
                        self.window += 1;
                    }
                    Ok(()) => {
                        let now = shards.clock().now_micros();
                        let shard = shards.shard_of(id);
                        self.per_shard[shard].push(QueuedPredict {
                            pos: self.window,
                            id,
                            time,
                            lane,
                            enq_us: now,
                            budget_us,
                            v2,
                            traced: trace,
                            trace_id: if trace { self.rng.next_u64() } else { 0 },
                            parse_us: now.saturating_sub(accept_us),
                        });
                        self.min_deadline_us =
                            self.min_deadline_us.min(now.saturating_add(budget_us));
                        self.has_v1 |= !v2;
                        self.window += 1;
                        self.queued += 1;
                        if self.queued >= self.batch_max {
                            self.flush(shards, out)?;
                        }
                    }
                }
            }
            Ok(ClientEvent::Shutdown) => {
                self.flush(shards, out)?;
                writeln!(out, "{}", ack_response("shutdown", 0))?;
                return Ok(Flow::Shutdown);
            }
            Ok(ClientEvent::Metrics(format)) => {
                self.flush(shards, out)?;
                let response = match format {
                    MetricsFormat::Json => metrics_response(shards.metrics_json()),
                    MetricsFormat::Prometheus => {
                        metrics_prometheus_response(shards.metrics_prometheus())
                    }
                };
                writeln!(out, "{response}")?;
            }
            Ok(ClientEvent::Trace { last }) => {
                // Drain first so just-queued traced predicts are visible.
                self.flush(shards, out)?;
                let n = last.min(RING_CAP);
                let mut traces = Vec::new();
                for shard in 0..shards.len() {
                    shards.trace_sink(shard).recent(n, &mut traces);
                }
                // One daemon-wide timeline: all shards share the session
                // clock, so completion instants order across shards.
                traces.sort_by(|a, b| b.end_us.cmp(&a.end_us));
                traces.truncate(n);
                writeln!(out, "{}", trace_response(&traces))?;
            }
            Ok(ClientEvent::Promote) => {
                self.flush(shards, out)?;
                let was_follower = shards.request_promote();
                trout_obs::log_info!(
                    "serve",
                    "promote requested (was {}); lifecycle events will be accepted once the \
                     stream drains",
                    if was_follower { "follower" } else { "leader" }
                );
                writeln!(out, "{}", promote_response(was_follower))?;
            }
            Ok(ClientEvent::ReplicationStatus) => {
                self.flush(shards, out)?;
                writeln!(out, "{}", shards.replication_status_json())?;
            }
            Ok(ClientEvent::StateDump) => {
                self.flush(shards, out)?;
                let watermarks = shards.journal_watermarks();
                let state = shards.merged_state_to_json();
                writeln!(out, "{}", state_dump_response(&watermarks, state))?;
            }
            Ok(event) => {
                // Lifecycle events keep response order: drain queued
                // predicts first, then broadcast to every shard.
                self.flush(shards, out)?;
                if shards.is_read_only() {
                    let e = TroutError::ReadOnly(
                        "this daemon is a replication follower; send lifecycle events to the \
                         leader (or promote this follower)"
                            .into(),
                    );
                    shards.metrics0().record_error(&e);
                    writeln!(out, "{}", error_response(&e))?;
                    return Ok(Flow::Continue);
                }
                let response = broadcast_event(shards, &event);
                match response {
                    Ok(r) => writeln!(out, "{r}")?,
                    Err(e) => {
                        shards.metrics0().record_error(&e);
                        writeln!(out, "{}", error_response(&e))?;
                    }
                }
            }
            Err(e) => {
                self.flush(shards, out)?;
                shards.metrics0().record_error(&e);
                if matches!(e, TroutError::Protocol(_)) && !self.protocol_dumped {
                    self.protocol_dumped = true;
                    shards.flight_dump("protocol_error", FLIGHT_DUMP_LAST);
                }
                writeln!(out, "{}", error_response(&e))?;
            }
        }
        Ok(Flow::Continue)
    }

    /// Fans queued predicts out to their shards and writes the responses in
    /// window-position order — one line per window position: predictions,
    /// errors, and pre-resolved sheds, unpaired tails answered explicitly.
    ///
    /// Within one shard's batch the queries execute in (priority-lane rank,
    /// arrival) order — urgent preempts normal preempts batch. Reordering
    /// never changes response bytes (inference is row-independent) but it
    /// does order journal predict lines and featurization, so the latency a
    /// lane pays inside the flush follows its priority.
    pub fn flush<W: Write>(&mut self, shards: &ShardSet, out: &mut W) -> Result<(), TroutError> {
        if self.window == 0 {
            return Ok(());
        }
        let now = shards.clock().now_micros();
        let mut slots: Vec<Option<Slot>> = (0..self.window).map(|_| None).collect();
        for (pos, retry_after_ms) in self.shed.drain(..) {
            slots[pos] = Some(Slot::Shed { retry_after_ms });
        }
        for (shard_idx, queue) in self.per_shard.iter_mut().enumerate() {
            if queue.is_empty() {
                continue;
            }
            queue.sort_by_key(|q| (q.lane.rank(), q.pos));
            let traced_any = queue.iter().any(|q| q.traced);
            let queries: Vec<PredictQuery> = queue
                .iter()
                .map(|q| PredictQuery {
                    id: q.id,
                    time: q.time,
                    lane: q.lane,
                })
                .collect();
            let mut guard = shards.lock(shard_idx);
            let lock_us = if traced_any {
                shards.clock().now_micros()
            } else {
                0
            };
            let results = guard.predict_batch(&queries);
            let stamp = traced_any.then(|| ShardStamp {
                shard: shard_idx,
                lock_us,
                done_us: shards.clock().now_micros(),
                featurize_us: guard.last_batch_featurize_us(),
            });
            pair_shard_results(&mut slots, queue, results, now, stamp);
            // Errors and scheduling outcomes are accounted where they
            // happened: the shard that owned the query.
            for q in queue.iter() {
                let wait = now.saturating_sub(q.enq_us);
                guard.metrics.queue_wait_us.record(wait);
                guard.metrics.lane_predicts_total[q.lane.rank()].inc();
                let violating = wait > q.budget_us;
                if violating {
                    guard.metrics.slo_violations_total[q.lane.rank()].inc();
                }
                // SLO burn accounting: one good/violating tick per predict
                // in the 1-second bucket of the flush instant.
                guard
                    .metrics
                    .burn
                    .record(q.lane.rank(), violating, now / 1_000_000);
                if let Some(Slot::Done { result: Err(e), .. }) = &slots[q.pos] {
                    guard.metrics.record_error(e);
                }
            }
            drop(guard);
            for q in queue.drain(..) {
                shards.admission().release(q.lane);
            }
        }
        for (pos, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Slot::Shed { retry_after_ms }) => writeln!(
                    out,
                    "{}",
                    error_response(&TroutError::Overloaded { retry_after_ms })
                )?,
                Some(Slot::Done {
                    id,
                    v2,
                    result: Ok(p),
                    trace,
                }) => match trace {
                    None => writeln!(out, "{}", prediction_response(id, &p, v2, None))?,
                    Some(t) => {
                        // Backlog ends and serialization begins now; the
                        // completed record lands in the owning shard's
                        // flight recorder.
                        let ser_start_us = shards.clock().now_micros();
                        writeln!(out, "{}", prediction_response(id, &p, v2, Some(t.trace_id)))?;
                        let end_us = shards.clock().now_micros();
                        let mut stages = [0u64; N_STAGES];
                        stages[Stage::Parse.index()] = t.parse_us;
                        stages[Stage::Hold.index()] = t.hold_us;
                        stages[Stage::Admission.index()] = t.admission_us;
                        stages[Stage::Featurize.index()] = t.featurize_us;
                        stages[Stage::Inference.index()] = t.inference_us;
                        stages[Stage::Backlog.index()] = ser_start_us.saturating_sub(t.done_us);
                        stages[Stage::Serialize.index()] = end_us.saturating_sub(ser_start_us);
                        let record = TraceRecord {
                            trace_id: t.trace_id,
                            lane: t.lane_rank,
                            end_us,
                            total_us: t.parse_us + end_us.saturating_sub(t.enq_us),
                            stages,
                        };
                        shards.trace_sink(t.shard).record(&record);
                    }
                },
                Some(Slot::Done { result: Err(e), .. }) => writeln!(out, "{}", error_response(&e))?,
                None => {
                    // Unreachable by construction (every window position is
                    // an admitted predict in exactly one shard queue or a
                    // shed), but a position must never go unanswered — a
                    // silent hole hangs the client.
                    let e = TroutError::Model(format!(
                        "internal: no shard answered window position {pos}"
                    ));
                    shards.metrics0().record_error(&e);
                    writeln!(out, "{}", error_response(&e))?;
                }
            }
        }
        self.window = 0;
        self.queued = 0;
        self.min_deadline_us = u64::MAX;
        self.has_v1 = false;
        Ok(())
    }
}

/// Writes one shard queue's batch results into the window slots, pairing
/// positionally (k-th result ↔ k-th query, in the queue's execution order).
/// `predict_batch` guarantees one result per query; if that invariant ever
/// breaks, the unpaired trailing queries get an explicit error result
/// instead of silently never being answered (a client waiting on a response
/// that will never come is a hang, not an error). Extra results beyond the
/// queue are dropped.
fn pair_shard_results(
    slots: &mut [Option<Slot>],
    queue: &[QueuedPredict],
    results: Vec<Result<QueuePrediction, TroutError>>,
    flush_us: u64,
    stamp: Option<ShardStamp>,
) {
    let mut results = results.into_iter();
    for q in queue {
        let result = results.next().unwrap_or_else(|| {
            Err(TroutError::Model(format!(
                "internal: batch produced no answer for job {}",
                q.id
            )))
        });
        let trace = match (q.traced, stamp) {
            (true, Some(s)) => Some(TraceStamp {
                trace_id: q.trace_id,
                lane_rank: q.lane.rank() as u8,
                parse_us: q.parse_us,
                enq_us: q.enq_us,
                hold_us: flush_us.saturating_sub(q.enq_us),
                admission_us: s.lock_us.saturating_sub(flush_us),
                featurize_us: s.featurize_us,
                inference_us: s
                    .done_us
                    .saturating_sub(s.lock_us)
                    .saturating_sub(s.featurize_us),
                done_us: s.done_us,
                shard: s.shard,
            }),
            _ => None,
        };
        slots[q.pos] = Some(Slot::Done {
            id: q.id,
            v2: q.v2,
            result,
            trace,
        });
    }
}

/// Applies one lifecycle event on every shard (shard order — all sessions
/// broadcast in the same order, so two sessions' concurrent events cannot
/// deadlock and every shard applies the same event set). Returns shard 0's
/// response; replicas must agree on success/failure.
fn broadcast_event(shards: &ShardSet, event: &ClientEvent) -> Result<String, TroutError> {
    let mut first: Option<Result<String, TroutError>> = None;
    for i in 0..shards.len() {
        let mut guard = shards.lock(i);
        let result = match event {
            ClientEvent::Submit(rec) => guard
                .apply_submit((**rec).clone())
                .map(|id| ack_response("submit", id)),
            ClientEvent::Start { id, time } => guard
                .apply_start(*id, *time)
                .map(|()| ack_response("start", *id)),
            ClientEvent::End { id, time } => guard
                .apply_end(*id, *time)
                .map(|()| ack_response("end", *id)),
            _ => unreachable!("broadcast_event only receives lifecycle events"),
        };
        drop(guard);
        match &first {
            None => first = Some(result),
            Some(f) => debug_assert_eq!(
                f.is_ok(),
                result.is_ok(),
                "shard {i} disagreed with shard 0 on a broadcast event"
            ),
        }
    }
    first.expect("a shard set is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::shard::ShardSet;
    use trout_slurmsim::SimulationBuilder;

    fn small_set(n_shards: usize) -> (ShardSet, Vec<trout_slurmsim::JobRecord>) {
        let cfg = ServeConfig {
            refit_every: 0,
            seed: 5,
            ..Default::default()
        };
        let set = ShardSet::bootstrap(n_shards, 150, &cfg);
        let live = SimulationBuilder::anvil_like().jobs(40).seed(6).run();
        (set, live.records)
    }

    #[test]
    fn mixed_batch_re_pairs_in_request_order_across_shards() {
        let (set, recs) = small_set(3);
        let mut session = RouterSession::new(set.len(), 64);
        let mut out = Vec::new();
        // Submit a handful of jobs, then predict them interleaved with an
        // unknown id; responses must come back in exactly request order.
        for rec in recs.iter().take(6) {
            let line = crate::protocol::submit_line(rec);
            assert_eq!(
                session.handle_line(&set, &line, &mut out).unwrap(),
                Flow::Continue
            );
        }
        out.clear();
        let mut expect_ids: Vec<Option<u64>> = Vec::new();
        for (k, rec) in recs.iter().take(6).enumerate() {
            let (id, ok) = if k == 3 {
                (888_888, false) // unknown id -> in-place error response
            } else {
                (rec.id, true)
            };
            let line = format!(
                "{{\"event\":\"predict\",\"id\":{id},\"time\":{}}}",
                rec.submit_time
            );
            session.handle_line(&set, &line, &mut out).unwrap();
            expect_ids.push(ok.then_some(id));
        }
        session.flush(&set, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6, "one response per request:\n{text}");
        for (line, expect) in lines.iter().zip(&expect_ids) {
            match expect {
                Some(id) => assert!(
                    line.contains(&format!("\"id\":{id}")),
                    "response out of order: {line} (wanted id {id})"
                ),
                None => assert!(line.contains("\"ok\":false"), "expected error: {line}"),
            }
        }
    }

    #[test]
    fn broadcast_keeps_every_shard_replica_identical() {
        let (set, recs) = small_set(2);
        let mut session = RouterSession::new(set.len(), 8);
        let mut out = Vec::new();
        for rec in recs.iter().take(10) {
            let line = crate::protocol::submit_line(rec);
            session.handle_line(&set, &line, &mut out).unwrap();
        }
        let idx0 = set.lock(0).index().state_to_json().to_string();
        let idx1 = set.lock(1).index().state_to_json().to_string();
        assert_eq!(idx0, idx1, "every shard holds the same index replica");
    }

    #[test]
    fn batch_cap_triggers_a_flush_mid_stream() {
        let (set, recs) = small_set(2);
        let mut session = RouterSession::new(set.len(), 3);
        let mut out = Vec::new();
        for rec in recs.iter().take(4) {
            let line = crate::protocol::submit_line(rec);
            session.handle_line(&set, &line, &mut out).unwrap();
        }
        out.clear();
        for rec in recs.iter().take(4) {
            let line = format!(
                "{{\"event\":\"predict\",\"id\":{},\"time\":{}}}",
                rec.id, rec.submit_time
            );
            session.handle_line(&set, &line, &mut out).unwrap();
        }
        let flushed = String::from_utf8(out.clone()).unwrap();
        assert_eq!(
            flushed.lines().count(),
            3,
            "cap of 3 flushed the first three predicts; the fourth is queued"
        );
        assert_eq!(session.queued(), 1);
        session.flush(&set, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 4);
    }

    use trout_core::QueueEstimate;
    use trout_std::proptest_lite::vec_of;
    use trout_std::{prop_assert, prop_assert_eq, proptest_lite};

    fn dummy_prediction(seed: u64) -> QueuePrediction {
        QueuePrediction {
            estimate: QueueEstimate::Minutes(seed as f32),
            quick_proba: 0.5,
            calibrated_proba: 0.5,
            minutes: Some(seed as f32),
            cutoff_min: 10.0,
            lane: trout_core::Lane::Normal,
        }
    }

    fn queued(pos: usize, id: u64) -> QueuedPredict {
        QueuedPredict {
            pos,
            id,
            time: 0,
            lane: trout_core::Lane::Normal,
            enq_us: 0,
            budget_us: 500_000,
            v2: false,
            traced: false,
            trace_id: 0,
            parse_us: 0,
        }
    }

    proptest_lite! {
        // The PR 5 flush_batch unit test, generalized: however predicts
        // interleave across lanes, pairing answers every window position
        // with the right job — and a lane whose batch came back short
        // (broken predict_batch invariant) yields explicit error responses
        // for its unpaired tail, never silence.
        #[cases(200)]
        fn arbitrary_interleavings_re_pair_positionally(
            lane_picks in vec_of(0u64..5, 0..60),
            lanes_n in 1u64..5,
            truncate in 0u64..4
        ) {
            let lanes_n = lanes_n as usize;
            let mut queues: Vec<Vec<QueuedPredict>> = vec![Vec::new(); lanes_n];
            for (pos, pick) in lane_picks.iter().enumerate() {
                let shard = (*pick as usize) % lanes_n;
                queues[shard].push(queued(pos, 1000 + pos as u64));
            }
            // Victim queue: the fullest one loses its last `truncate` results.
            let victim = (0..lanes_n).max_by_key(|&l| queues[l].len()).unwrap();
            let mut slots: Vec<Option<Slot>> =
                (0..lane_picks.len()).map(|_| None).collect();
            let mut unpaired: Vec<u64> = Vec::new();
            for (l, queue) in queues.iter().enumerate() {
                let mut results: Vec<Result<QueuePrediction, TroutError>> =
                    queue.iter().map(|q| Ok(dummy_prediction(q.id))).collect();
                if l == victim {
                    let keep = results.len().saturating_sub(truncate as usize);
                    unpaired = queue[keep..].iter().map(|q| q.id).collect();
                    results.truncate(keep);
                }
                pair_shard_results(&mut slots, queue, results, 0, None);
            }
            for (pos, slot) in slots.iter().enumerate() {
                let (id, result) = match slot.as_ref().expect("every window position answered") {
                    Slot::Done { id, result, .. } => (id, result),
                    Slot::Shed { .. } => panic!("no sheds in this window"),
                };
                prop_assert_eq!(*id, 1000 + pos as u64, "position {} answered for the wrong job", pos);
                match result {
                    Ok(p) => {
                        // The queue's k-th result went to its k-th query.
                        prop_assert_eq!(p.minutes, Some(*id as f32));
                        prop_assert!(!unpaired.contains(id));
                    }
                    Err(e) => {
                        prop_assert!(unpaired.contains(id), "unexpected error at {}: {}", pos, e);
                        prop_assert!(e.to_string().contains(&id.to_string()));
                    }
                }
            }
        }
    }

    #[test]
    fn shutdown_drains_the_queue_before_acking() {
        let (set, recs) = small_set(2);
        let mut session = RouterSession::new(set.len(), 64);
        let mut out = Vec::new();
        let rec = &recs[0];
        session
            .handle_line(&set, &crate::protocol::submit_line(rec), &mut out)
            .unwrap();
        out.clear();
        let line = format!(
            "{{\"event\":\"predict\",\"id\":{},\"time\":{}}}",
            rec.id, rec.submit_time
        );
        session.handle_line(&set, &line, &mut out).unwrap();
        assert_eq!(session.queued(), 1);
        let flow = session
            .handle_line(&set, "{\"event\":\"shutdown\"}", &mut out)
            .unwrap();
        assert_eq!(flow, Flow::Shutdown);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "predict response, then the shutdown ack");
        assert!(lines[0].contains("\"event\":\"predict\""));
        assert!(lines[1].contains("\"event\":\"shutdown\""));
    }
}
