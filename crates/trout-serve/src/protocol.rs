//! The serve wire protocol: line-delimited JSON in both directions.
//!
//! Each request line is one object tagged by `"event"`:
//!
//! ```text
//! {"event":"submit","job":{"id":1,"user":3,"partition":0,"submit_time":100,
//!   "eligible_time":100,"req_cpus":4,"req_mem_gb":8,"req_nodes":1,
//!   "req_gpus":0,"timelimit_min":60,"qos":"normal","priority":1200.5}}
//! {"event":"start","id":1,"time":160}
//! {"event":"end","id":1,"time":3600}
//! {"event":"predict","id":1,"time":120}
//! {"v":2,"event":"predict","id":1,"time":120,"deadline_ms":50,"lane":"urgent"}
//! {"event":"metrics"}
//! {"event":"shutdown"}
//! ```
//!
//! The **v2 predict envelope** adds an optional `"v":2` version tag, a
//! latency budget (`deadline_ms`, positive milliseconds), a priority
//! lane (`"urgent"|"normal"|"batch"`), and an opt-in `"trace":true` flag
//! that mints a request-scoped trace id (echoed as `"trace_id"` in the
//! response) and records the request's per-stage latency into the flight
//! recorder (DESIGN §14). v1 lines (no `"v"` field, or `"v":1`) stay valid
//! and default to the normal lane with the server's configured budget;
//! their responses are byte-identical to the v1 protocol. Only `"v":2`
//! requests get the lane (and trace id) echoed in the response.
//!
//! `{"event":"trace","last":N}` dumps the most recent completed traces
//! across all shards as one response line; like `metrics` it is read-only
//! and never journaled.
//!
//! Every line gets exactly one response line, in request order. Success
//! responses carry `"ok":true`; failures carry `"ok":false` and an `"error"`
//! string whose prefix is the [`TroutError`] class (an `overloaded` shed
//! additionally carries a numeric `"retry_after_ms"`). A malformed line is
//! answered (not fatal): the daemon must survive a misbehaving client.

use trout_core::{Lane, QueueEstimate, QueuePrediction, TroutError};
use trout_slurmsim::{JobRecord, JobState};
use trout_std::json::Json;
use trout_workload::Qos;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// A job entered the queue.
    Submit(Box<JobRecord>),
    /// A pending job started running.
    Start {
        /// Job id.
        id: u64,
        /// Start instant (unix seconds).
        time: i64,
    },
    /// A running job finished — or a pending job was cancelled.
    End {
        /// Job id.
        id: u64,
        /// End instant (unix seconds).
        time: i64,
    },
    /// Predict the queue time of a submitted job as of `time`.
    Predict {
        /// Job id.
        id: u64,
        /// Query instant (unix seconds).
        time: i64,
        /// Priority lane (v2 field; v1 lines default to normal).
        lane: Lane,
        /// Explicit latency budget in milliseconds, if the client named one.
        /// `None` means the lane's configured default applies. Never
        /// journaled: the budget shapes scheduling, not state.
        deadline_ms: Option<u64>,
        /// Whether the line carried `"v":2` — controls the lane echo in the
        /// response, keeping v1 responses byte-identical.
        v2: bool,
        /// Whether the line carried `"trace":true` (v2 only): mint a trace
        /// id, echo it, and record per-stage latencies into the flight
        /// recorder. Never journaled: tracing is observation, not state.
        trace: bool,
    },
    /// Dump the metrics registry in the requested exposition format.
    Metrics(MetricsFormat),
    /// Dump the last `last` completed traces from the flight recorder.
    Trace {
        /// How many recent traces to return (capped at the ring size).
        last: usize,
    },
    /// Admin line: flip this replication follower to leader. The follower
    /// drains its stream connection, lifts the read-only gate, and starts
    /// accepting lifecycle events. Never journaled — role is deployment
    /// state, not model state.
    Promote,
    /// Replication status dump: role, per-shard watermarks, follower lag.
    /// Read-only, never journaled.
    ReplicationStatus,
    /// Full canonical state dump (`state_to_json` merged across shards)
    /// with per-shard journal watermarks — the probe the replication
    /// bit-identity oracle compares between leader and follower. Read-only,
    /// never journaled.
    StateDump,
    /// Close the session cleanly.
    Shutdown,
}

/// Exposition format of a `metrics` request (the optional `"format"` field;
/// omitted means JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// The sectioned JSON registry dump.
    #[default]
    Json,
    /// Prometheus text exposition, embedded as the `"body"` string of the
    /// response line.
    Prometheus,
}

/// Default `last` for a `{"event":"trace"}` request without the field.
pub const DEFAULT_TRACE_LAST: usize = 32;

fn field_i64(j: &Json, key: &str) -> Result<i64, TroutError> {
    match j.get(key) {
        Some(Json::Int(v)) => {
            i64::try_from(*v).map_err(|_| TroutError::Parse(format!("field `{key}` out of range")))
        }
        Some(_) => Err(TroutError::Parse(format!(
            "field `{key}` must be an integer"
        ))),
        None => Err(TroutError::Parse(format!("missing field `{key}`"))),
    }
}

fn field_u64(j: &Json, key: &str) -> Result<u64, TroutError> {
    let v = field_i64(j, key)?;
    u64::try_from(v).map_err(|_| TroutError::Parse(format!("field `{key}` must be non-negative")))
}

fn field_u32(j: &Json, key: &str) -> Result<u32, TroutError> {
    let v = field_i64(j, key)?;
    u32::try_from(v).map_err(|_| TroutError::Parse(format!("field `{key}` out of u32 range")))
}

fn field_f64_or(j: &Json, key: &str, default: f64) -> Result<f64, TroutError> {
    match j.get(key) {
        Some(Json::Num(v)) => Ok(*v),
        Some(Json::Int(v)) => Ok(*v as f64),
        Some(_) => Err(TroutError::Parse(format!("field `{key}` must be a number"))),
        None => Ok(default),
    }
}

fn parse_job(j: &Json) -> Result<JobRecord, TroutError> {
    let qos = match j.get("qos") {
        None => Qos::Normal,
        Some(Json::Str(s)) => {
            Qos::parse(s).ok_or_else(|| TroutError::Parse(format!("unknown qos `{s}`")))?
        }
        Some(_) => return Err(TroutError::Parse("field `qos` must be a string".into())),
    };
    let submit_time = field_i64(j, "submit_time")?;
    Ok(JobRecord {
        id: field_u64(j, "id")?,
        user: field_u32(j, "user")?,
        partition: field_u32(j, "partition")?,
        submit_time,
        eligible_time: match j.get("eligible_time") {
            Some(_) => field_i64(j, "eligible_time")?,
            None => submit_time,
        },
        // Unknown for a live job; the engine replaces them with open-ended
        // sentinels as the lifecycle events arrive.
        start_time: 0,
        end_time: 0,
        req_cpus: field_u32(j, "req_cpus")?,
        req_mem_gb: field_u32(j, "req_mem_gb")?,
        req_nodes: field_u32(j, "req_nodes")?,
        req_gpus: match j.get("req_gpus") {
            Some(_) => field_u32(j, "req_gpus")?,
            None => 0,
        },
        timelimit_min: field_u32(j, "timelimit_min")?,
        qos,
        campaign: match j.get("campaign") {
            Some(_) => field_u64(j, "campaign")?,
            None => 0,
        },
        priority: field_f64_or(j, "priority", 0.0)?,
        state: JobState::Completed,
    })
}

/// Parses one request line.
pub fn parse_event(line: &str) -> Result<ClientEvent, TroutError> {
    let j = Json::parse(line).map_err(|e| TroutError::Parse(e.to_string()))?;
    let kind = match j.get("event") {
        Some(Json::Str(s)) => s.clone(),
        _ => return Err(TroutError::Protocol("missing `event` tag".into())),
    };
    match kind.as_str() {
        "submit" => {
            let job = j
                .get("job")
                .ok_or_else(|| TroutError::Protocol("submit: missing `job` object".into()))?;
            Ok(ClientEvent::Submit(Box::new(parse_job(job)?)))
        }
        "start" => Ok(ClientEvent::Start {
            id: field_u64(&j, "id")?,
            time: field_i64(&j, "time")?,
        }),
        "end" => Ok(ClientEvent::End {
            id: field_u64(&j, "id")?,
            time: field_i64(&j, "time")?,
        }),
        "predict" => {
            let v2 = match j.get("v") {
                None => false,
                Some(Json::Int(1)) => false,
                Some(Json::Int(2)) => true,
                Some(other) => {
                    return Err(TroutError::Protocol(format!(
                        "unsupported protocol version {other} (expected 1 or 2)"
                    )))
                }
            };
            let lane = match j.get("lane") {
                None => Lane::Normal,
                Some(Json::Str(s)) => Lane::parse(s).ok_or_else(|| {
                    TroutError::Protocol(format!(
                        "unknown lane `{s}` (expected urgent, normal, or batch)"
                    ))
                })?,
                Some(_) => {
                    return Err(TroutError::Protocol("field `lane` must be a string".into()))
                }
            };
            let deadline_ms =
                match j.get("deadline_ms") {
                    None => None,
                    Some(Json::Int(v)) if *v > 0 => Some(u64::try_from(*v).map_err(|_| {
                        TroutError::Parse("field `deadline_ms` out of range".into())
                    })?),
                    Some(_) => {
                        return Err(TroutError::Parse(
                            "field `deadline_ms` must be a positive integer".into(),
                        ))
                    }
                };
            let trace = match j.get("trace") {
                None => false,
                Some(Json::Bool(b)) => {
                    if *b && !v2 {
                        return Err(TroutError::Protocol(
                            "`trace` requires the v2 envelope (`\"v\":2`)".into(),
                        ));
                    }
                    *b
                }
                Some(_) => {
                    return Err(TroutError::Protocol(
                        "field `trace` must be a boolean".into(),
                    ))
                }
            };
            Ok(ClientEvent::Predict {
                id: field_u64(&j, "id")?,
                time: field_i64(&j, "time")?,
                lane,
                deadline_ms,
                v2,
                trace,
            })
        }
        "metrics" => Ok(ClientEvent::Metrics(match j.get("format") {
            None => MetricsFormat::Json,
            Some(Json::Str(s)) if s == "json" => MetricsFormat::Json,
            Some(Json::Str(s)) if s == "prometheus" => MetricsFormat::Prometheus,
            Some(other) => {
                return Err(TroutError::Protocol(format!(
                    "metrics: unknown format {other:?} (expected \"json\" or \"prometheus\")"
                )))
            }
        })),
        "trace" => {
            let last = match j.get("last") {
                None => DEFAULT_TRACE_LAST,
                Some(Json::Int(v)) if *v > 0 => usize::try_from(*v)
                    .map_err(|_| TroutError::Parse("field `last` out of range".into()))?,
                Some(_) => {
                    return Err(TroutError::Parse(
                        "field `last` must be a positive integer".into(),
                    ))
                }
            };
            Ok(ClientEvent::Trace { last })
        }
        "promote" => Ok(ClientEvent::Promote),
        "replication" => Ok(ClientEvent::ReplicationStatus),
        "state" => Ok(ClientEvent::StateDump),
        "shutdown" => Ok(ClientEvent::Shutdown),
        other => Err(TroutError::Protocol(format!("unknown event `{other}`"))),
    }
}

/// Serializes a job record as the protocol's submit payload (the `trout
/// events` generator and tests share it with the parser).
pub fn job_to_json(r: &JobRecord) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::Int(r.id as i128)),
        ("user".into(), Json::Int(r.user as i128)),
        ("partition".into(), Json::Int(r.partition as i128)),
        ("submit_time".into(), Json::Int(r.submit_time as i128)),
        ("eligible_time".into(), Json::Int(r.eligible_time as i128)),
        ("req_cpus".into(), Json::Int(r.req_cpus as i128)),
        ("req_mem_gb".into(), Json::Int(r.req_mem_gb as i128)),
        ("req_nodes".into(), Json::Int(r.req_nodes as i128)),
        ("req_gpus".into(), Json::Int(r.req_gpus as i128)),
        ("timelimit_min".into(), Json::Int(r.timelimit_min as i128)),
        ("qos".into(), Json::Str(r.qos.as_str().into())),
        ("campaign".into(), Json::Int(r.campaign as i128)),
        ("priority".into(), Json::Num(r.priority)),
    ])
}

/// Canonical one-line serialization of a state-changing event — the
/// journal's record format. Deliberately the *request* grammar (the journal
/// is a replayable client script), so recovery feeds lines straight back
/// through [`parse_event`]. Read-only events (`metrics`, `shutdown`) carry
/// no state and return `None`.
pub fn event_to_line(ev: &ClientEvent) -> Option<String> {
    match ev {
        ClientEvent::Submit(rec) => Some(submit_line(rec)),
        ClientEvent::Start { id, time } => Some(lifecycle_line("start", *id, *time)),
        ClientEvent::End { id, time } => Some(lifecycle_line("end", *id, *time)),
        ClientEvent::Predict { id, time, lane, .. } => Some(predict_line(*id, *time, *lane)),
        ClientEvent::Metrics(_)
        | ClientEvent::Trace { .. }
        | ClientEvent::Promote
        | ClientEvent::ReplicationStatus
        | ClientEvent::StateDump
        | ClientEvent::Shutdown => None,
    }
}

/// The journal/wire line for a `submit`.
pub fn submit_line(rec: &JobRecord) -> String {
    Json::Obj(vec![
        ("event".into(), Json::Str("submit".into())),
        ("job".into(), job_to_json(rec)),
    ])
    .to_string()
}

/// The journal/wire line for a `start`/`end`/`predict`.
pub fn lifecycle_line(event: &str, id: u64, time: i64) -> String {
    format!("{{\"event\":\"{event}\",\"id\":{id},\"time\":{time}}}")
}

/// The journal/wire line for a `predict`. The lane is recorded only when it
/// is not the default, so journals written by v1 traffic stay byte-identical
/// to the v1 format (recovery bit-identity across the protocol bump). The
/// deadline is deliberately absent: it shapes scheduling, never state.
pub fn predict_line(id: u64, time: i64, lane: Lane) -> String {
    if lane == Lane::Normal {
        lifecycle_line("predict", id, time)
    } else {
        format!(
            "{{\"event\":\"predict\",\"id\":{id},\"time\":{time},\"lane\":\"{}\"}}",
            lane.as_str()
        )
    }
}

/// `{"ok":true,"event":...}` acknowledgement for a lifecycle event.
pub fn ack_response(event: &str, id: u64) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("event".into(), Json::Str(event.into())),
        ("id".into(), Json::Int(id as i128)),
    ])
    .to_string()
}

/// The predict response: decision, probabilities, and minutes when present.
/// `v2` requests additionally get their lane echoed (right after `id`), and
/// a traced request gets its minted trace id (hex, after the lane); omitting
/// both for v1 keeps those responses byte-identical to the v1 protocol.
pub fn prediction_response(
    id: u64,
    p: &QueuePrediction,
    v2: bool,
    trace_id: Option<u64>,
) -> String {
    let mut members = vec![
        ("ok".into(), Json::Bool(true)),
        ("event".into(), Json::Str("predict".into())),
        ("id".into(), Json::Int(id as i128)),
    ];
    if v2 {
        members.push(("lane".into(), Json::Str(p.lane.as_str().into())));
        if let Some(tid) = trace_id {
            members.push(("trace_id".into(), Json::Str(trace_id_str(tid))));
        }
    }
    members.extend([
        (
            "quick_start".into(),
            Json::Bool(matches!(p.estimate, QueueEstimate::QuickStart)),
        ),
        ("quick_proba".into(), Json::Num(p.quick_proba as f64)),
        (
            "calibrated_proba".into(),
            Json::Num(p.calibrated_proba as f64),
        ),
        ("cutoff_min".into(), Json::Num(p.cutoff_min as f64)),
    ]);
    if let Some(m) = p.minutes {
        members.push(("minutes".into(), Json::Num(m as f64)));
    }
    members.push(("message".into(), Json::Str(p.message())));
    Json::Obj(members).to_string()
}

/// The canonical wire form of a trace id: 16 hex digits (strings survive
/// clients whose JSON numbers are f64).
pub fn trace_id_str(id: u64) -> String {
    format!("{id:016x}")
}

/// One completed trace as a JSON object — the element format of the
/// `trace` response and of flight-recorder ndjson dumps.
pub fn trace_record_json(r: &trout_obs::TraceRecord) -> Json {
    let lane = Lane::from_rank(r.lane as usize).unwrap_or(Lane::Normal);
    Json::Obj(vec![
        ("trace_id".into(), Json::Str(trace_id_str(r.trace_id))),
        ("lane".into(), Json::Str(lane.as_str().into())),
        ("end_us".into(), Json::Int(r.end_us as i128)),
        ("total_us".into(), Json::Int(r.total_us as i128)),
        ("stages".into(), r.stages_json()),
    ])
}

/// The flight-recorder dump response: the most recent completed traces
/// (newest first), each with its per-stage breakdown, as one line.
pub fn trace_response(traces: &[trout_obs::TraceRecord]) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("event".into(), Json::Str("trace".into())),
        ("count".into(), Json::Int(traces.len() as i128)),
        (
            "traces".into(),
            Json::Arr(traces.iter().map(trace_record_json).collect()),
        ),
    ])
    .to_string()
}

/// The metrics response, wrapping the registry dump.
pub fn metrics_response(metrics: Json) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("event".into(), Json::Str("metrics".into())),
        ("metrics".into(), metrics),
    ])
    .to_string()
}

/// The Prometheus-format metrics response: the exposition text rides as one
/// escaped JSON string so the response stays a single line.
pub fn metrics_prometheus_response(body: String) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("event".into(), Json::Str("metrics".into())),
        ("format".into(), Json::Str("prometheus".into())),
        ("body".into(), Json::Str(body)),
    ])
    .to_string()
}

/// The state-dump response: per-shard journal watermarks (index order)
/// followed by the canonical merged state. Two daemons at identical
/// watermarks must produce byte-identical `state` members — the replication
/// bit-identity oracle.
pub fn state_dump_response(watermarks: &[u64], state: Json) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("event".into(), Json::Str("state".into())),
        (
            "watermarks".into(),
            Json::Arr(watermarks.iter().map(|w| Json::Int(*w as i128)).collect()),
        ),
        ("state".into(), state),
    ])
    .to_string()
}

/// The promote acknowledgement: the daemon's new role.
pub fn promote_response(was_follower: bool) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("event".into(), Json::Str("promote".into())),
        ("role".into(), Json::Str("leader".into())),
        ("was_follower".into(), Json::Bool(was_follower)),
    ])
    .to_string()
}

/// `{"ok":false,"error":...}` — the error class rides in the message prefix.
/// An admission shed additionally carries a machine-readable
/// `"retry_after_ms"` so clients can back off without parsing prose.
pub fn error_response(e: &TroutError) -> String {
    let mut members = vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(e.to_string())),
    ];
    if let TroutError::Overloaded { retry_after_ms } = e {
        members.push(("retry_after_ms".into(), Json::Int(*retry_after_ms as i128)));
    }
    Json::Obj(members).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_job_to_json() {
        let rec = JobRecord {
            id: 42,
            user: 7,
            partition: 1,
            submit_time: 1000,
            eligible_time: 1060,
            start_time: 0,
            end_time: 0,
            req_cpus: 16,
            req_mem_gb: 64,
            req_nodes: 2,
            req_gpus: 1,
            timelimit_min: 120,
            qos: Qos::High,
            campaign: 3,
            priority: 1234.5,
            state: JobState::Completed,
        };
        let line = Json::Obj(vec![
            ("event".into(), Json::Str("submit".into())),
            ("job".into(), job_to_json(&rec)),
        ])
        .to_string();
        match parse_event(&line).unwrap() {
            ClientEvent::Submit(parsed) => assert_eq!(*parsed, rec),
            other => panic!("wrong event {other:?}"),
        }
    }

    #[test]
    fn minimal_submit_uses_defaults() {
        let line = r#"{"event":"submit","job":{"id":1,"user":0,"partition":0,
            "submit_time":50,"req_cpus":1,"req_mem_gb":2,"req_nodes":1,
            "timelimit_min":30}}"#
            .replace('\n', " ");
        match parse_event(&line).unwrap() {
            ClientEvent::Submit(j) => {
                assert_eq!(j.eligible_time, 50, "defaults to submit_time");
                assert_eq!(j.qos, Qos::Normal);
                assert_eq!(j.req_gpus, 0);
            }
            other => panic!("wrong event {other:?}"),
        }
    }

    #[test]
    fn lifecycle_and_control_events_parse() {
        assert_eq!(
            parse_event(r#"{"event":"start","id":3,"time":99}"#).unwrap(),
            ClientEvent::Start { id: 3, time: 99 }
        );
        assert_eq!(
            parse_event(r#"{"event":"end","id":3,"time":200}"#).unwrap(),
            ClientEvent::End { id: 3, time: 200 }
        );
        assert_eq!(
            parse_event(r#"{"event":"predict","id":3,"time":120}"#).unwrap(),
            ClientEvent::Predict {
                id: 3,
                time: 120,
                lane: Lane::Normal,
                deadline_ms: None,
                v2: false,
                trace: false,
            }
        );
        assert_eq!(
            parse_event(r#"{"event":"metrics"}"#).unwrap(),
            ClientEvent::Metrics(MetricsFormat::Json)
        );
        assert_eq!(
            parse_event(r#"{"event":"metrics","format":"prometheus"}"#).unwrap(),
            ClientEvent::Metrics(MetricsFormat::Prometheus)
        );
        assert!(matches!(
            parse_event(r#"{"event":"metrics","format":"xml"}"#),
            Err(TroutError::Protocol(_))
        ));
        assert_eq!(
            parse_event(r#"{"event":"shutdown"}"#).unwrap(),
            ClientEvent::Shutdown
        );
        assert_eq!(
            parse_event(r#"{"event":"promote"}"#).unwrap(),
            ClientEvent::Promote
        );
        assert_eq!(
            parse_event(r#"{"event":"replication"}"#).unwrap(),
            ClientEvent::ReplicationStatus
        );
        assert_eq!(
            parse_event(r#"{"event":"state"}"#).unwrap(),
            ClientEvent::StateDump
        );
        // None of the admin/status events ever reach the journal.
        for ev in [
            ClientEvent::Promote,
            ClientEvent::ReplicationStatus,
            ClientEvent::StateDump,
        ] {
            assert_eq!(event_to_line(&ev), None);
        }
    }

    #[test]
    fn malformed_lines_classify_as_parse_or_protocol() {
        assert!(matches!(
            parse_event("not json at all"),
            Err(TroutError::Parse(_))
        ));
        assert!(matches!(
            parse_event(r#"{"event":"warp","id":1}"#),
            Err(TroutError::Protocol(_))
        ));
        assert!(matches!(
            parse_event(r#"{"id":1}"#),
            Err(TroutError::Protocol(_))
        ));
        assert!(matches!(
            parse_event(r#"{"event":"start","id":3}"#),
            Err(TroutError::Parse(_))
        ));
    }

    #[test]
    fn journal_lines_round_trip_through_the_parser() {
        let rec = JobRecord {
            id: 9,
            user: 2,
            partition: 0,
            submit_time: 500,
            eligible_time: 510,
            start_time: 0,
            end_time: 0,
            req_cpus: 8,
            req_mem_gb: 16,
            req_nodes: 1,
            req_gpus: 0,
            timelimit_min: 45,
            qos: Qos::Normal,
            campaign: 0,
            priority: 7.25,
            state: JobState::Completed,
        };
        for ev in [
            ClientEvent::Submit(Box::new(rec)),
            ClientEvent::Start { id: 9, time: 600 },
            ClientEvent::End { id: 9, time: 700 },
            ClientEvent::Predict {
                id: 9,
                time: 550,
                lane: Lane::Normal,
                deadline_ms: None,
                v2: false,
                trace: false,
            },
            // A non-default lane survives the journal; the deadline does
            // not (scheduling, not state), so round-trip holds with None.
            ClientEvent::Predict {
                id: 9,
                time: 560,
                lane: Lane::Urgent,
                deadline_ms: None,
                v2: false,
                trace: false,
            },
        ] {
            let line = event_to_line(&ev).expect("state-changing events serialize");
            assert!(!line.contains('\n'));
            assert_eq!(parse_event(&line).unwrap(), ev, "{line}");
        }
        assert_eq!(event_to_line(&ClientEvent::Shutdown), None);
        assert_eq!(
            event_to_line(&ClientEvent::Metrics(MetricsFormat::Json)),
            None
        );
    }

    #[test]
    fn responses_are_single_line_json() {
        let p = QueuePrediction {
            estimate: QueueEstimate::Minutes(42.5),
            quick_proba: 0.2,
            calibrated_proba: 0.25,
            minutes: Some(42.5),
            cutoff_min: 10.0,
            lane: Lane::Normal,
        };
        for s in [
            ack_response("submit", 1),
            prediction_response(1, &p, false, None),
            error_response(&TroutError::Protocol("x".into())),
            metrics_response(Json::Obj(vec![])),
            metrics_prometheus_response("trout_serve_predicts_total 1\n".into()),
        ] {
            assert!(!s.contains('\n'), "{s}");
            let parsed = Json::parse(&s).unwrap();
            assert!(parsed.get("ok").is_some());
        }
        let parsed = Json::parse(&prediction_response(1, &p, false, None)).unwrap();
        assert_eq!(parsed.get("quick_start"), Some(&Json::Bool(false)));
        assert!(parsed.get("minutes").is_some());
    }

    #[test]
    fn v2_predict_envelope_parses_and_echoes_lane() {
        assert_eq!(
            parse_event(
                r#"{"v":2,"event":"predict","id":4,"time":10,"deadline_ms":50,"lane":"urgent"}"#
            )
            .unwrap(),
            ClientEvent::Predict {
                id: 4,
                time: 10,
                lane: Lane::Urgent,
                deadline_ms: Some(50),
                v2: true,
                trace: false,
            }
        );
        // v1 lines may still name a lane/deadline; only the echo is gated.
        assert_eq!(
            parse_event(r#"{"event":"predict","id":4,"time":10,"lane":"batch"}"#).unwrap(),
            ClientEvent::Predict {
                id: 4,
                time: 10,
                lane: Lane::Batch,
                deadline_ms: None,
                v2: false,
                trace: false,
            }
        );
        assert!(matches!(
            parse_event(r#"{"v":3,"event":"predict","id":4,"time":10}"#),
            Err(TroutError::Protocol(_))
        ));
        assert!(matches!(
            parse_event(r#"{"event":"predict","id":4,"time":10,"lane":"vip"}"#),
            Err(TroutError::Protocol(_))
        ));
        assert!(matches!(
            parse_event(r#"{"event":"predict","id":4,"time":10,"deadline_ms":0}"#),
            Err(TroutError::Parse(_))
        ));
        assert!(matches!(
            parse_event(r#"{"event":"predict","id":4,"time":10,"deadline_ms":"soon"}"#),
            Err(TroutError::Parse(_))
        ));

        let p = QueuePrediction {
            estimate: QueueEstimate::QuickStart,
            quick_proba: 0.9,
            calibrated_proba: 0.9,
            minutes: None,
            cutoff_min: 10.0,
            lane: Lane::Urgent,
        };
        let v2 = prediction_response(7, &p, true, None);
        assert_eq!(
            Json::parse(&v2).unwrap().get("lane"),
            Some(&Json::Str("urgent".into()))
        );
        let v1 = prediction_response(7, &p, false, None);
        assert_eq!(Json::parse(&v1).unwrap().get("lane"), None);
    }

    #[test]
    fn overloaded_response_carries_retry_after() {
        let s = error_response(&TroutError::Overloaded { retry_after_ms: 40 });
        let parsed = Json::parse(&s).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get("retry_after_ms"), Some(&Json::Int(40)));
        match parsed.get("error") {
            Some(Json::Str(msg)) => assert!(msg.starts_with("overloaded")),
            other => panic!("bad error member {other:?}"),
        }
    }

    #[test]
    fn predict_journal_lines_omit_default_lane() {
        assert_eq!(
            predict_line(3, 120, Lane::Normal),
            r#"{"event":"predict","id":3,"time":120}"#
        );
        assert_eq!(
            predict_line(3, 120, Lane::Urgent),
            r#"{"event":"predict","id":3,"time":120,"lane":"urgent"}"#
        );
    }

    #[test]
    fn trace_flag_requires_the_v2_envelope() {
        assert_eq!(
            parse_event(r#"{"v":2,"event":"predict","id":4,"time":10,"trace":true}"#).unwrap(),
            ClientEvent::Predict {
                id: 4,
                time: 10,
                lane: Lane::Normal,
                deadline_ms: None,
                v2: true,
                trace: true,
            }
        );
        // `"trace":false` is accepted anywhere (it requests nothing).
        assert!(matches!(
            parse_event(r#"{"event":"predict","id":4,"time":10,"trace":false}"#).unwrap(),
            ClientEvent::Predict { trace: false, .. }
        ));
        assert!(matches!(
            parse_event(r#"{"event":"predict","id":4,"time":10,"trace":true}"#),
            Err(TroutError::Protocol(_))
        ));
        assert!(matches!(
            parse_event(r#"{"v":2,"event":"predict","id":4,"time":10,"trace":"yes"}"#),
            Err(TroutError::Protocol(_))
        ));
    }

    #[test]
    fn trace_event_parses_with_default_and_explicit_last() {
        assert_eq!(
            parse_event(r#"{"event":"trace"}"#).unwrap(),
            ClientEvent::Trace {
                last: DEFAULT_TRACE_LAST
            }
        );
        assert_eq!(
            parse_event(r#"{"event":"trace","last":5}"#).unwrap(),
            ClientEvent::Trace { last: 5 }
        );
        assert!(matches!(
            parse_event(r#"{"event":"trace","last":0}"#),
            Err(TroutError::Parse(_))
        ));
        assert!(matches!(
            parse_event(r#"{"event":"trace","last":"many"}"#),
            Err(TroutError::Parse(_))
        ));
    }

    #[test]
    fn traced_v2_response_echoes_the_trace_id_as_hex() {
        let p = QueuePrediction {
            estimate: QueueEstimate::Minutes(42.0),
            quick_proba: 0.2,
            calibrated_proba: 0.2,
            minutes: Some(42.0),
            cutoff_min: 10.0,
            lane: Lane::Normal,
        };
        let traced = prediction_response(9, &p, true, Some(0xfeed));
        assert_eq!(
            Json::parse(&traced).unwrap().get("trace_id"),
            Some(&Json::Str("000000000000feed".into())),
            "16 hex digits survive f64-JSON clients"
        );
        // Untraced v2 and v1 responses carry no trace_id at all.
        let v2 = prediction_response(9, &p, true, None);
        assert_eq!(Json::parse(&v2).unwrap().get("trace_id"), None);
        let v1 = prediction_response(9, &p, false, None);
        assert!(!v1.contains("trace_id"));
        assert_eq!(trace_id_str(u64::MAX), "ffffffffffffffff");
    }

    #[test]
    fn trace_response_lists_records_newest_layout() {
        let mut r = trout_obs::TraceRecord {
            trace_id: 0xab,
            lane: 0,
            end_us: 500,
            total_us: 120,
            stages: [10, 20, 5, 50, 25, 4, 6],
        };
        let line = trace_response(std::slice::from_ref(&r));
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(j.get("event"), Some(&Json::Str("trace".into())));
        assert_eq!(j.get("count"), Some(&Json::Int(1)));
        let t = match j.get("traces") {
            Some(Json::Arr(v)) => &v[0],
            other => panic!("bad traces member {other:?}"),
        };
        assert_eq!(
            t.get("trace_id"),
            Some(&Json::Str("00000000000000ab".into()))
        );
        assert_eq!(t.get("lane"), Some(&Json::Str("urgent".into())));
        assert_eq!(t.get("total_us"), Some(&Json::Int(120)));
        let stages = t.get("stages").expect("stages object");
        assert_eq!(stages.get("parse_us"), Some(&Json::Int(10)));
        assert_eq!(stages.get("serialize_us"), Some(&Json::Int(6)));
        // The stage tiling is exact: stages sum to the total by construction.
        r.stages = [30, 30, 30, 10, 10, 5, 5];
        r.total_us = r.stages.iter().sum();
        let j = Json::parse(&trace_response(&[r])).unwrap();
        let t = match j.get("traces") {
            Some(Json::Arr(v)) => &v[0],
            other => panic!("bad traces member {other:?}"),
        };
        assert_eq!(t.get("total_us"), Some(&Json::Int(120)));
    }
}
