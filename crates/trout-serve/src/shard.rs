//! Shard set: N independent [`ServeEngine`]s behind one wire protocol.
//!
//! The single-engine daemon serializes *everything* — featurization,
//! inference, even metric dumps — behind one mutex. A [`ShardSet`] replaces
//! that with `--shards N` fully independent engines, each owning its own
//! snapshot index, model `Arc`, inference scratch, drift monitor, and
//! write-ahead journal subdirectory (`shard-000/`, `shard-001/`, …).
//!
//! **Routing.** Lifecycle events (`submit` / `start` / `end`) are
//! *broadcast*: every shard applies every event, so each holds a complete
//! replica of the incremental queue snapshot. That replica is what makes a
//! predict's features — queue depth, user load, partition pressure — correct
//! no matter which shard answers. Index maintenance is `O(log n)` per event
//! and dwarfed by featurize + forward-pass cost, so replicating it N ways is
//! cheap; the expensive work (`predict`) is routed to exactly one shard by
//! `hash(job_id) % N` ([`shard_of`], a SplitMix64 finalizer so sequential
//! ids spread evenly). This is also the only routing under which the merged
//! N-shard state can equal the 1-shard reference *bitwise*: every shard sees
//! the same event stream in the same order, so indices (and eviction sweeps,
//! which key off the state-event count) are identical everywhere, and each
//! prediction is computed from the same features the single engine would
//! have used.
//!
//! **Merging.** [`ShardSet::merged_state_to_json`] canonicalizes the union
//! of the per-shard states — predict-derived maps (cached rows, pending
//! drift joins) are disjoint by routing and re-sorted by job id, counters
//! sum, replicas are asserted equal — producing a form that is *identical*
//! for an N-shard set and a 1-shard reference fed the same stream (modulo
//! the one documented exception: the drift monitor's `abs_err_sum` is an
//! order-sensitive f64 sum, so the merged form omits it and
//! [`ShardSet::merged_drift`] exposes it for tolerance-based comparison).
//!
//! Per-shard durability composes with this untouched: each shard journals
//! the events *it* applied in *its* order, so `--recover` replays every
//! shard independently and each recovered shard is bit-identical to its
//! pre-crash self — `state_to_json` per shard remains the oracle.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use trout_core::online::OnlineConfig;
use trout_core::{TroutConfig, TroutError, LANES};
use trout_obs::trace::{BurnSnapshot, TraceSink};
use trout_slurmsim::{SimulationBuilder, Trace};
use trout_std::clock::{Clock, MonotonicClock};
use trout_std::json::Json;

use crate::engine::{ServeConfig, ServeEngine};
use crate::metrics::{burn_snapshot_to_json, ServeMetrics, CONFUSION_CELLS, ERROR_CLASSES};
use crate::recover::RecoveryReport;
use crate::scheduler::{AdmissionControl, SchedulerConfig};

/// Routes a job id to its owning shard: SplitMix64 finalizer mod N. Job ids
/// are typically sequential, so the raw modulus would stripe adjacent jobs
/// and any id-correlated load straight onto one shard; the mix makes the
/// assignment effectively uniform and — being a pure function of the id —
/// stable across restarts, recoveries, and shard-set rebuilds.
pub fn shard_of(id: u64, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % n as u64) as usize
}

/// The subdirectory one shard's journal + snapshot live in.
pub fn shard_dir(state_dir: &Path, shard: usize) -> PathBuf {
    state_dir.join(format!("shard-{shard:03}"))
}

/// Locks one engine mutex, recovering from poison. A session that panics
/// while holding the guard poisons the mutex; the engine applies events one
/// at a time under the lock, so its state is consistent at every lock
/// boundary and the panic of one session is no reason to refuse every other
/// session forever. Each recovery is counted under the `poisoned` error
/// class of *that shard's* registry.
pub(crate) fn lock_engine(engine: &Mutex<ServeEngine>) -> MutexGuard<'_, ServeEngine> {
    match engine.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            engine.clear_poison();
            let guard = poisoned.into_inner();
            guard.metrics.record_poisoned();
            trout_obs::log_warn!(
                "serve",
                "engine mutex poisoned by a panicked session; recovered and serving on"
            );
            // A poisoned engine is exactly when the recent-request context
            // matters: dump this shard's flight recorder before serving on.
            dump_flight_sink("poisoned", None, &guard.metrics.trace, FLIGHT_DUMP_RECORDS);
            guard
        }
    }
}

/// Records per shard a flight dump emits (recent-first).
const FLIGHT_DUMP_RECORDS: usize = 8;

/// Writes one shard's recent completed traces to stderr as ndjson, each
/// line tagged with the dump reason (and the shard index when known). The
/// flight recorder keeps flowing while this reads — torn slots are skipped,
/// not awaited — so a dump never stalls the serve path.
fn dump_flight_sink(reason: &str, shard: Option<usize>, sink: &TraceSink, last: usize) {
    let mut buf = Vec::new();
    sink.recent(last, &mut buf);
    for r in &buf {
        let mut members = match crate::protocol::trace_record_json(r) {
            Json::Obj(m) => m,
            _ => unreachable!("trace_record_json returns an object"),
        };
        if let Some(i) = shard {
            members.insert(0, ("shard".into(), Json::Int(i as i128)));
        }
        members.insert(0, ("flight".into(), Json::Str(reason.into())));
        eprintln!("{}", Json::Obj(members).to_string());
    }
}

/// N independent engines, each behind its own mutex. All transports (stdin,
/// thread-per-connection TCP, the reactor) share one `ShardSet`, and with it
/// the scheduler: one clock, one [`SchedulerConfig`], and one
/// [`AdmissionControl`] whose lane depths are global across sessions — the
/// budget a request competes for is the daemon's capacity, not one
/// connection's.
pub struct ShardSet {
    shards: Vec<Mutex<ServeEngine>>,
    /// Each shard's trace sink, cloned out of its engine at construction so
    /// sessions record and dump traces without touching the engine mutexes.
    sinks: Vec<TraceSink>,
    clock: Arc<dyn Clock>,
    scheduler: SchedulerConfig,
    admission: AdmissionControl,
    /// Replication role gate: a follower serves predicts but refuses
    /// lifecycle events with a typed `read_only` error — its journal stream
    /// from the leader is the only legal source of state changes.
    read_only: AtomicBool,
    /// Set by a `{"event":"promote"}` admin line; the follower loop observes
    /// it, drains the stream connection, and lifts the read-only gate.
    promote_requested: AtomicBool,
}

impl ShardSet {
    /// Wraps pre-built engines (they must be built from the same trace and
    /// config — [`ShardSet::bootstrap`]/[`ShardSet::from_trace`] guarantee
    /// that; hand-rolled sets are on the caller).
    pub fn new(engines: Vec<ServeEngine>) -> ShardSet {
        assert!(!engines.is_empty(), "a shard set needs at least one engine");
        let sinks = engines.iter().map(|e| e.metrics.trace.clone()).collect();
        ShardSet {
            shards: engines.into_iter().map(Mutex::new).collect(),
            sinks,
            clock: Arc::new(MonotonicClock::new()),
            scheduler: SchedulerConfig::default(),
            admission: AdmissionControl::new(),
            read_only: AtomicBool::new(false),
            promote_requested: AtomicBool::new(false),
        }
    }

    /// Replaces the scheduler tunables (builder style, pre-serving).
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> ShardSet {
        self.scheduler = scheduler;
        self
    }

    /// Replaces the clock (builder style — tests inject a
    /// [`trout_std::clock::ManualClock`] here to make scheduling
    /// deterministic).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> ShardSet {
        self.clock = clock;
        self
    }

    /// The scheduler tunables every session schedules against.
    pub fn scheduler(&self) -> &SchedulerConfig {
        &self.scheduler
    }

    /// The clock scheduling decisions read.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The daemon-wide admission controller.
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// The single-engine set (the `--shards 1` default — byte-compatible
    /// with the pre-sharding daemon on every response).
    pub fn single(engine: ServeEngine) -> ShardSet {
        ShardSet::new(vec![engine])
    }

    /// N engines from one historical trace. The trace is featurized and the
    /// model trained **once** (unless pretrained); the remaining shards are
    /// built from the same trace with a clone of that model. Featurization
    /// and training are deterministic, so every shard starts from an
    /// identical scaler, runtime forest, and model.
    pub fn from_trace(
        n_shards: usize,
        trace: &Trace,
        pretrained: Option<trout_core::HierarchicalModel>,
        base_cfg: TroutConfig,
        online_cfg: OnlineConfig,
        cfg: &ServeConfig,
    ) -> ShardSet {
        let n = n_shards.max(1);
        let first =
            ServeEngine::from_trace(trace, pretrained, base_cfg.clone(), online_cfg.clone(), cfg);
        let model = first.model();
        let mut engines = Vec::with_capacity(n);
        engines.push(first);
        for _ in 1..n {
            engines.push(ServeEngine::from_trace(
                trace,
                Some((*model).clone()),
                base_cfg.clone(),
                online_cfg.clone(),
                cfg,
            ));
        }
        ShardSet::new(engines)
    }

    /// Self-contained N-shard set for smoke tests and benches: simulate a
    /// trace and train the smoke-sized model on it, once, shared by every
    /// shard.
    pub fn bootstrap(n_shards: usize, jobs: usize, cfg: &ServeConfig) -> ShardSet {
        let trace = SimulationBuilder::anvil_like()
            .jobs(jobs)
            .seed(cfg.seed)
            .run();
        let mut base = TroutConfig::smoke();
        base.seed = cfg.seed;
        ShardSet::from_trace(n_shards, &trace, None, base, OnlineConfig::default(), cfg)
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the set is the degenerate empty set (never — `new` asserts).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owning `id`'s predicts.
    pub fn shard_of(&self, id: u64) -> usize {
        shard_of(id, self.shards.len())
    }

    /// One shard's mutex (tests and benches drive shards directly).
    pub fn shard(&self, i: usize) -> &Mutex<ServeEngine> {
        &self.shards[i]
    }

    /// Locks shard `i`, recovering from poison.
    pub fn lock(&self, i: usize) -> MutexGuard<'_, ServeEngine> {
        lock_engine(&self.shards[i])
    }

    /// Shard `i`'s trace sink — lock-free access for the session hot path.
    pub fn trace_sink(&self, i: usize) -> &TraceSink {
        &self.sinks[i]
    }

    /// Dumps every shard's flight recorder (last `last` completed traces)
    /// to stderr as ndjson, tagged with `reason`. No engine lock is taken.
    pub fn flight_dump(&self, reason: &str, last: usize) {
        for (i, sink) in self.sinks.iter().enumerate() {
            dump_flight_sink(reason, Some(i), sink, last);
        }
    }

    /// Shard 0's metrics handles (cloned — they share the registry). The
    /// transports account connection- and listener-level events here:
    /// per-shard registries stay meaningful (a shard's counters describe
    /// that shard's work) while transport totals live in one place.
    pub fn metrics0(&self) -> ServeMetrics {
        self.lock(0).metrics.clone()
    }

    /// Arms durability for every shard against `dir/shard-NNN/`, returning
    /// one recovery report per shard. The layout is uniform — a 1-shard set
    /// writes `dir/shard-000/` too — so restarting with a different shard
    /// count is detectable: a populated state dir must hold exactly one
    /// subdirectory per shard, because the broadcast/routing split means no
    /// shard's journal is a superset of another's.
    pub fn open_state_dir(
        &self,
        dir: &Path,
        snapshot_every: u64,
        recover: bool,
    ) -> Result<Vec<RecoveryReport>, TroutError> {
        std::fs::create_dir_all(dir)?;
        let existing = count_shard_dirs(dir)?;
        if existing > 0 && existing != self.shards.len() {
            return Err(TroutError::Config(format!(
                "state dir {} holds {} shard subdirectories but the daemon is running \
                 with --shards {}; recovery requires the same shard count the state \
                 was written with",
                dir.display(),
                existing,
                self.shards.len()
            )));
        }
        let mut reports = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let sub = shard_dir(dir, i);
            reports.push(lock_engine(shard).open_state_dir(&sub, snapshot_every, recover)?);
        }
        Ok(reports)
    }

    /// Syncs every shard's buffered journal appends (clean-shutdown path).
    pub fn sync_journals(&self) -> Result<(), TroutError> {
        for shard in &self.shards {
            lock_engine(shard).sync_journal()?;
        }
        Ok(())
    }

    /// Enables (or disables) journal compaction on every shard.
    pub fn set_compaction(&self, on: bool) {
        for shard in &self.shards {
            lock_engine(shard).set_compaction(on);
        }
    }

    /// Flips the read-only gate: `true` makes every lifecycle event answer
    /// with a typed `read_only` error while predicts keep flowing.
    pub fn set_read_only(&self, on: bool) {
        self.read_only.store(on, Ordering::SeqCst);
    }

    /// Whether lifecycle events are currently refused (follower role).
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    /// Records a promotion request (the `{"event":"promote"}` admin line).
    /// Returns whether the daemon was a follower at the time — a leader
    /// acks idempotently.
    pub fn request_promote(&self) -> bool {
        self.promote_requested.store(true, Ordering::SeqCst);
        self.is_read_only()
    }

    /// Whether promotion has been requested (polled by the follower loop).
    pub fn promote_requested(&self) -> bool {
        self.promote_requested.load(Ordering::SeqCst)
    }

    /// Per-shard absolute journal watermarks (index order). A shard without
    /// a state dir reports 0.
    pub fn journal_watermarks(&self) -> Vec<u64> {
        (0..self.shards.len())
            .map(|i| self.lock(i).journal_position())
            .collect()
    }

    /// The replication status payload: role plus per-shard watermark,
    /// compaction base, connected-follower count, and lag (the leader-side
    /// gauges are 0 on a follower).
    pub fn replication_status_json(&self) -> Json {
        let shards: Vec<Json> = (0..self.shards.len())
            .map(|i| {
                let g = self.lock(i);
                Json::Obj(vec![
                    ("watermark".into(), Json::Int(g.journal_position() as i128)),
                    ("base".into(), Json::Int(g.journal_base() as i128)),
                    (
                        "followers".into(),
                        Json::Int(g.metrics.replication_followers.get() as i128),
                    ),
                    (
                        "lag".into(),
                        Json::Int(g.metrics.replication_lag_events.get() as i128),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("event".into(), Json::Str("replication".into())),
            (
                "role".into(),
                Json::Str(
                    if self.is_read_only() {
                        "follower"
                    } else {
                        "leader"
                    }
                    .into(),
                ),
            ),
            ("shards".into(), Json::Arr(shards)),
        ])
    }

    /// The canonical merged deterministic state: the N-shard union in a form
    /// identical to the canonicalized 1-shard reference for the same event
    /// stream (see the module docs; `abs_err_sum` is deliberately absent —
    /// compare it through [`ShardSet::merged_drift`] with a float
    /// tolerance). Replicated sections (scaler, models, index, event-derived
    /// scalars) are taken from shard 0; the concurrency battery separately
    /// asserts all shards' replicas are byte-equal.
    pub fn merged_state_to_json(&self) -> Json {
        let states: Vec<Json> = (0..self.shards.len())
            .map(|i| self.lock(i).state_to_json())
            .collect();
        merge_states(&states)
    }

    /// Order-insensitive drift aggregates across shards: (joined pairs,
    /// Σ abs_err_sum, fleet MAE in minutes). The per-pair errors are exact —
    /// only the f64 summation order differs from a single engine's, so an
    /// equivalence test compares the MAE within a tiny tolerance instead of
    /// bitwise.
    pub fn merged_drift(&self) -> (u64, f64, f64) {
        let mut joined = 0u64;
        let mut err_sum = 0.0f64;
        for i in 0..self.shards.len() {
            let g = self.lock(i);
            joined += g.drift().joined();
            err_sum += g.drift().abs_err_sum();
        }
        let mae = if joined == 0 {
            0.0
        } else {
            err_sum / joined as f64
        };
        (joined, err_sum, mae)
    }

    /// The `metrics` response payload. A 1-shard set delegates to the
    /// engine's own dump (byte-compatible with the pre-sharding daemon); an
    /// N-shard set merges: counters sum (except replica counts — `requests`
    /// and `sessions` are accounted on shard 0 only, and `state_events`
    /// reports shard 0's logical event count, not N× it), error classes sum,
    /// latency histograms merge bucket-wise, and drift joins pool across
    /// shards.
    pub fn metrics_json(&self) -> Json {
        if self.shards.len() == 1 {
            return self.lock(0).metrics_json();
        }
        let m = self.merge_metrics();
        m.to_json()
    }

    /// Prometheus exposition. A 1-shard set is byte-compatible with the
    /// pre-sharding daemon; an N-shard set exposes each shard's registry
    /// with a `shardNNN` infix (`trout_serve_shard000_predicts_total …`) so
    /// operators see per-shard series — skew between shards *is* the signal
    /// sharding introduces — followed by the process-wide span histograms
    /// once.
    pub fn metrics_prometheus(&self) -> String {
        if self.shards.len() == 1 {
            return self.lock(0).metrics_prometheus();
        }
        let mut text = String::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let one = lock_engine(shard).metrics.to_prometheus();
            text.push_str(&one.replace("trout_serve_", &format!("trout_serve_shard{i:03}_")));
        }
        text.push_str(&trout_obs::global().to_prometheus());
        text
    }

    /// Pools every shard's registry into one merged snapshot (counter sums,
    /// histogram bucket merges, pooled drift) for the JSON dump.
    fn merge_metrics(&self) -> MergedMetrics {
        let mut m = MergedMetrics::default();
        for (i, shard) in self.shards.iter().enumerate() {
            let g = lock_engine(shard);
            let mm = &g.metrics;
            if i == 0 {
                m.requests = mm.requests_total.get();
                m.sessions = mm.sessions_total.get();
                m.state_events = mm.state_events_total.get();
            }
            m.predicts += mm.predicts_total.get();
            m.batches += mm.batches_total.get();
            m.refits += mm.refits_total.get();
            m.errors += mm.errors_total.get();
            m.journal_appends += mm.journal_appends_total.get();
            m.snapshots += mm.snapshots_total.get();
            m.recovery_replayed += mm.recovery_replayed_events.get();
            for (acc, c) in m.errors_by_class.iter_mut().zip(&mm.errors_by_class) {
                *acc += c.get();
            }
            for (acc, c) in m.lane_predicts.iter_mut().zip(&mm.lane_predicts_total) {
                *acc += c.get();
            }
            for (acc, c) in m.shed.iter_mut().zip(&mm.shed_total) {
                *acc += c.get();
            }
            for (acc, c) in m.slo_violations.iter_mut().zip(&mm.slo_violations_total) {
                *acc += c.get();
            }
            m.queue_wait_us.merge(&mm.queue_wait_us.snapshot());
            m.featurize_us.merge(&mm.featurize_us.snapshot());
            m.inference_us.merge(&mm.inference_us.snapshot());
            m.predict_us.merge(&mm.predict_us.snapshot());
            m.batch_us.merge(&mm.batch_us.snapshot());
            m.batch_size.merge(&mm.batch_size.snapshot());
            m.snapshot_write_us.merge(&mm.snapshot_write_us.snapshot());
            m.burn.merge(&mm.refresh_burn_gauges());
            let d = g.drift();
            m.joined += d.joined();
            m.abs_err_sum += d.abs_err_sum();
            m.within += d.within_count();
            m.pending += d.pending() as u64;
            for (acc, v) in m.confusion.iter_mut().zip(d.confusion()) {
                *acc += v;
            }
        }
        m
    }
}

/// Accumulator for the N-shard merged metrics dump.
#[derive(Default)]
struct MergedMetrics {
    requests: u64,
    predicts: u64,
    batches: u64,
    state_events: u64,
    refits: u64,
    errors: u64,
    journal_appends: u64,
    snapshots: u64,
    recovery_replayed: u64,
    sessions: u64,
    errors_by_class: [u64; 8],
    lane_predicts: [u64; 3],
    shed: [u64; 3],
    slo_violations: [u64; 3],
    queue_wait_us: crate::metrics::LogHistogram,
    featurize_us: crate::metrics::LogHistogram,
    inference_us: crate::metrics::LogHistogram,
    predict_us: crate::metrics::LogHistogram,
    batch_us: crate::metrics::LogHistogram,
    batch_size: crate::metrics::LogHistogram,
    snapshot_write_us: crate::metrics::LogHistogram,
    burn: BurnSnapshot,
    joined: u64,
    abs_err_sum: f64,
    within: u64,
    pending: u64,
    confusion: [u64; 4],
}

impl MergedMetrics {
    /// Same section layout as [`ServeMetrics::to_json`] +
    /// [`DriftMonitor::to_json`](crate::engine::DriftMonitor::to_json) +
    /// spans, so clients parse one schema regardless of shard count.
    fn to_json(&self) -> Json {
        let by_class: Vec<(String, Json)> = ERROR_CLASSES
            .iter()
            .zip(&self.errors_by_class)
            .map(|(name, &c)| (name.to_string(), Json::Int(c as i128)))
            .collect();
        let confusion: Vec<(String, Json)> = CONFUSION_CELLS
            .iter()
            .zip(&self.confusion)
            .map(|(name, &c)| (name.to_string(), Json::Int(c as i128)))
            .collect();
        let mae = if self.joined == 0 {
            0.0
        } else {
            self.abs_err_sum / self.joined as f64
        };
        let within_2x = if self.joined == 0 {
            0.0
        } else {
            self.within as f64 / self.joined as f64
        };
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(vec![
                    ("requests".into(), Json::Int(self.requests as i128)),
                    ("predicts".into(), Json::Int(self.predicts as i128)),
                    ("batches".into(), Json::Int(self.batches as i128)),
                    ("state_events".into(), Json::Int(self.state_events as i128)),
                    ("refits".into(), Json::Int(self.refits as i128)),
                    ("errors".into(), Json::Int(self.errors as i128)),
                    (
                        "journal_appends".into(),
                        Json::Int(self.journal_appends as i128),
                    ),
                    ("snapshots".into(), Json::Int(self.snapshots as i128)),
                    (
                        "recovery_replayed_events".into(),
                        Json::Int(self.recovery_replayed as i128),
                    ),
                    ("sessions".into(), Json::Int(self.sessions as i128)),
                ]),
            ),
            ("errors_by_class".into(), Json::Obj(by_class)),
            ("admission".into(), {
                let per_lane = |vals: &[u64; 3]| {
                    Json::Obj(
                        LANES
                            .iter()
                            .zip(vals)
                            .map(|(l, &v)| (l.as_str().to_string(), Json::Int(v as i128)))
                            .collect(),
                    )
                };
                Json::Obj(vec![
                    ("lane_predicts".into(), per_lane(&self.lane_predicts)),
                    ("shed".into(), per_lane(&self.shed)),
                    (
                        "shed_total".into(),
                        Json::Int(self.shed.iter().sum::<u64>() as i128),
                    ),
                    ("slo_violations".into(), per_lane(&self.slo_violations)),
                ])
            }),
            ("featurize_us".into(), self.featurize_us.to_json()),
            ("queue_wait_us".into(), self.queue_wait_us.to_json()),
            ("inference_us".into(), self.inference_us.to_json()),
            ("predict_us".into(), self.predict_us.to_json()),
            ("batch_us".into(), self.batch_us.to_json()),
            ("batch_size".into(), self.batch_size.to_json()),
            ("snapshot_write_us".into(), self.snapshot_write_us.to_json()),
            ("burn".into(), burn_snapshot_to_json(&self.burn)),
            (
                "drift".into(),
                Json::Obj(vec![
                    ("joined".into(), Json::Int(self.joined as i128)),
                    ("mae_min".into(), Json::Num(mae)),
                    ("within_2x".into(), Json::Num(within_2x)),
                    ("pending".into(), Json::Int(self.pending as i128)),
                    ("confusion".into(), Json::Obj(confusion)),
                ]),
            ),
            ("spans".into(), trout_obs::global().histograms_json()),
        ])
    }
}

/// Counts `shard-NNN` subdirectories already present in a state dir.
fn count_shard_dirs(dir: &Path) -> Result<usize, TroutError> {
    let mut n = 0usize;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir()
            && name.len() == 9
            && name.starts_with("shard-")
            && name[6..].bytes().all(|b| b.is_ascii_digit())
        {
            n += 1;
        }
    }
    Ok(n)
}

// ---------------------------------------------------------------------------
// Canonical state merge.
// ---------------------------------------------------------------------------

fn arr<'a>(j: &'a Json, key: &str) -> &'a [Json] {
    match j.get(key) {
        Some(Json::Arr(v)) => v,
        other => panic!("state field `{key}` must be an array, got {other:?}"),
    }
}

fn int(j: &Json, key: &str) -> i128 {
    match j.get(key) {
        Some(Json::Int(v)) => *v,
        other => panic!("state field `{key}` must be an integer, got {other:?}"),
    }
}

/// The id of an `[id, payload]` entry (cached rows, served predictions).
fn entry_id(e: &Json) -> i128 {
    match e {
        Json::Arr(pair) => match pair.first() {
            Some(Json::Int(id)) => *id,
            other => panic!("entry id must be an integer, got {other:?}"),
        },
        other => panic!("entry must be an [id, payload] array, got {other:?}"),
    }
}

/// Merges per-shard [`ServeEngine::state_to_json`] values into the canonical
/// union form (see the module docs). With one state this *canonicalizes* it
/// — id-sorting the order-dependent sections — which is exactly what lets
/// `merge_states(&[n_shard…]) == merge_states(&[reference])` hold bitwise.
fn merge_states(states: &[Json]) -> Json {
    assert!(!states.is_empty());
    let first = &states[0];

    // Predict-routed maps: disjoint across shards, union + id-sort.
    let mut cached: Vec<Json> = states
        .iter()
        .flat_map(|s| arr(s, "cached_rows"))
        .cloned()
        .collect();
    cached.sort_by_key(entry_id);
    let mut served: Vec<Json> = states
        .iter()
        .flat_map(|s| arr(s.get("drift").expect("state.drift"), "served"))
        .cloned()
        .collect();
    served.sort_by_key(entry_id);

    // Refit history: one (raw, y, id) triple per completed predicted job,
    // owned by the shard that predicted it; union + id-sort, re-split.
    let mut hist: Vec<(i128, Json, Json)> = Vec::new();
    for s in states {
        let raws = arr(s, "history_raw");
        let ys = arr(s, "history_y");
        let ids = arr(s, "history_ids");
        assert_eq!(raws.len(), ys.len());
        assert_eq!(raws.len(), ids.len());
        for ((raw, y), id) in raws.iter().zip(ys).zip(ids) {
            let id = match id {
                Json::Int(v) => *v,
                other => panic!("history id must be an integer, got {other:?}"),
            };
            hist.push((id, raw.clone(), y.clone()));
        }
    }
    hist.sort_by_key(|(id, _, _)| *id);
    let history_ids: Vec<Json> = hist.iter().map(|(id, _, _)| Json::Int(*id)).collect();
    let history_raw: Vec<Json> = hist.iter().map(|(_, raw, _)| raw.clone()).collect();
    let history_y: Vec<Json> = hist.iter().map(|(_, _, y)| y.clone()).collect();

    // Event-derived scalars are replicas: every shard applied every
    // lifecycle event, so they must agree (latest_time takes the max only to
    // be safe against a shard that saw no events yet).
    let latest_time = states.iter().map(|s| int(s, "latest_time")).max().unwrap();

    // Routed integer counters sum exactly across shards.
    let completed: i128 = states.iter().map(|s| int(s, "completed_since_refit")).sum();
    let drift_of = |s: &Json| s.get("drift").expect("state.drift").clone();
    let joined: i128 = states.iter().map(|s| int(&drift_of(s), "joined")).sum();
    let within: i128 = states.iter().map(|s| int(&drift_of(s), "within")).sum();
    let mut confusion = [0i128; 4];
    for s in states {
        let d = drift_of(s);
        let cells = arr(&d, "confusion");
        assert_eq!(cells.len(), 4);
        for (acc, c) in confusion.iter_mut().zip(cells) {
            match c {
                Json::Int(v) => *acc += v,
                other => panic!("confusion cell must be an integer, got {other:?}"),
            }
        }
    }
    let counters_of = |s: &Json| s.get("counters").expect("state.counters").clone();
    let predicts: i128 = states
        .iter()
        .map(|s| int(&counters_of(s), "predicts"))
        .sum();
    let refits: i128 = states.iter().map(|s| int(&counters_of(s), "refits")).sum();
    // state_events is a replica count (each shard saw every event once).
    let state_events = int(&counters_of(first), "state_events");

    let clone_of = |key: &str| first.get(key).unwrap_or(&Json::Null).clone();
    Json::Obj(vec![
        ("version".into(), clone_of("version")),
        ("scaler".into(), clone_of("scaler")),
        ("runtime_model".into(), clone_of("runtime_model")),
        ("model".into(), clone_of("model")),
        ("index".into(), clone_of("index")),
        ("cached_rows".into(), Json::Arr(cached)),
        ("history_raw".into(), Json::Arr(history_raw)),
        ("history_y".into(), Json::Arr(history_y)),
        ("history_ids".into(), Json::Arr(history_ids)),
        ("completed_since_refit".into(), Json::Int(completed)),
        ("latest_time".into(), Json::Int(latest_time)),
        (
            "drift".into(),
            Json::Obj(vec![
                ("served".into(), Json::Arr(served)),
                ("joined".into(), Json::Int(joined)),
                ("within".into(), Json::Int(within)),
                (
                    "confusion".into(),
                    Json::Arr(confusion.iter().map(|&c| Json::Int(c)).collect()),
                ),
            ]),
        ),
        (
            "counters".into(),
            Json::Obj(vec![
                ("predicts".into(), Json::Int(predicts)),
                ("state_events".into(), Json::Int(state_events)),
                ("refits".into(), Json::Int(refits)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_roughly_uniform() {
        let n = 4;
        let mut counts = [0usize; 4];
        for id in 0..4096u64 {
            let s = shard_of(id, n);
            assert_eq!(s, shard_of(id, n), "pure function of the id");
            counts[s] += 1;
        }
        for &c in &counts {
            // Uniform would be 1024 per shard; allow generous skew.
            assert!((700..1400).contains(&c), "skewed shard counts {counts:?}");
        }
        // Sequential ids must not stripe: adjacent ids land on different
        // shards often enough that no shard starves.
        assert_eq!(shard_of(7, 1), 0, "single shard takes everything");
    }

    #[test]
    fn shard_dirs_are_zero_padded_and_uniform() {
        let d = shard_dir(Path::new("/tmp/state"), 0);
        assert!(d.ends_with("shard-000"));
        let d = shard_dir(Path::new("/tmp/state"), 12);
        assert!(d.ends_with("shard-012"));
    }

    #[test]
    fn merge_of_one_state_canonicalizes_order_dependent_sections() {
        // A hand-built state whose cached_rows/history arrived out of id
        // order (as live completion order produces).
        let state = |ids: &[i64]| {
            Json::Obj(vec![
                ("version".into(), Json::Int(1)),
                ("scaler".into(), Json::Str("S".into())),
                ("runtime_model".into(), Json::Str("R".into())),
                ("model".into(), Json::Str("M".into())),
                ("index".into(), Json::Str("I".into())),
                (
                    "cached_rows".into(),
                    Json::Arr(
                        ids.iter()
                            .map(|&id| {
                                Json::Arr(vec![Json::Int(id as i128), Json::Str("row".into())])
                            })
                            .collect(),
                    ),
                ),
                (
                    "history_raw".into(),
                    Json::Arr(
                        ids.iter()
                            .map(|&id| Json::Str(format!("raw{id}")))
                            .collect(),
                    ),
                ),
                (
                    "history_y".into(),
                    Json::Arr(ids.iter().map(|&id| Json::Int(id as i128 * 10)).collect()),
                ),
                (
                    "history_ids".into(),
                    Json::Arr(ids.iter().map(|&id| Json::Int(id as i128)).collect()),
                ),
                ("completed_since_refit".into(), Json::Int(ids.len() as i128)),
                ("latest_time".into(), Json::Int(99)),
                (
                    "drift".into(),
                    Json::Obj(vec![
                        ("served".into(), Json::Arr(vec![])),
                        ("joined".into(), Json::Int(1)),
                        ("abs_err_sum".into(), Json::Num(0.5)),
                        ("within".into(), Json::Int(1)),
                        (
                            "confusion".into(),
                            Json::Arr(vec![Json::Int(1), Json::Int(0), Json::Int(0), Json::Int(0)]),
                        ),
                    ]),
                ),
                (
                    "counters".into(),
                    Json::Obj(vec![
                        ("predicts".into(), Json::Int(ids.len() as i128)),
                        ("state_events".into(), Json::Int(7)),
                        ("refits".into(), Json::Int(0)),
                    ]),
                ),
            ])
        };
        let merged = merge_states(&[state(&[5, 2, 9])]);
        let ids = arr(&merged, "history_ids");
        assert_eq!(
            ids,
            &[Json::Int(2), Json::Int(5), Json::Int(9)],
            "history re-sorted by id"
        );
        let ys = arr(&merged, "history_y");
        assert_eq!(
            ys,
            &[Json::Int(20), Json::Int(50), Json::Int(90)],
            "y follows its id"
        );
        assert_eq!(entry_id(&arr(&merged, "cached_rows")[0]), 2);
        // abs_err_sum (order-sensitive f64) is excluded from the canonical form.
        assert!(merged.get("drift").unwrap().get("abs_err_sum").is_none());
        assert_eq!(
            merged.get("drift").unwrap().get("joined"),
            Some(&Json::Int(1))
        );

        // Two disjoint shards merge to the same bytes as their union.
        let two = merge_states(&[state(&[5, 9]), state(&[2])]);
        let via_union = merge_states(&[state(&[5, 2, 9])]);
        // Counters differ (summed vs single) only where the split differs:
        // completed_since_refit 3 both ways, predicts 3 both ways.
        assert_eq!(
            two.get("history_ids"),
            via_union.get("history_ids"),
            "unions agree"
        );
        assert_eq!(
            two.get("completed_since_refit"),
            via_union.get("completed_since_refit")
        );
        assert_eq!(int(&two.get("counters").unwrap().clone(), "predicts"), 3);
    }

    #[test]
    fn mismatched_shard_count_is_refused_on_recovery() {
        let dir = std::env::temp_dir().join(format!(
            "trout-shard-count-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("shard-000")).unwrap();
        std::fs::create_dir_all(dir.join("shard-001")).unwrap();
        // Journal presence is what makes a shard dir "state"; an empty pair
        // of dirs still counts as a layout mismatch for a 1-shard daemon.
        let set = ShardSet::bootstrap(
            1,
            80,
            &ServeConfig {
                refit_every: 0,
                seed: 11,
                ..Default::default()
            },
        );
        let err = set.open_state_dir(&dir, 0, true).unwrap_err();
        assert!(matches!(err, TroutError::Config(_)), "{err}");
        assert!(err.to_string().contains("shard"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
