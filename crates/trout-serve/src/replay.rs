//! Replay-script generation: flatten a simulated trace into the ndjson
//! event stream a live client would have produced.
//!
//! `trout events` and the serve integration tests both need the same
//! script — submit/start/end lines in simulation-time order, optionally
//! interleaved with predict requests — so the generator lives here next to
//! the protocol it targets. The script ends with `metrics` and `shutdown`
//! so a piped session exits cleanly.

use trout_features::incremental::{trace_events, ReplayEvent};
use trout_slurmsim::Trace;
use trout_std::json::Json;

use crate::protocol::job_to_json;

/// Flattens `trace` into a time-ordered submit/start/end ndjson script.
///
/// With `predict_every > 0`, every Nth submit is followed by a predict for
/// that job at its submission instant — the shape the drift monitor joins
/// against once the job's `start` arrives. Ends with a JSON `metrics`
/// request and a `shutdown`.
pub fn replay_script(trace: &Trace, predict_every: usize) -> String {
    let mut out = String::new();
    let mut submits = 0usize;
    for (t, ev) in trace_events(trace) {
        match ev {
            ReplayEvent::Submit(i) => {
                let r = &trace.records[i];
                let line = Json::Obj(vec![
                    ("event".into(), Json::Str("submit".into())),
                    ("job".into(), job_to_json(r)),
                ]);
                out.push_str(&line.to_string());
                out.push('\n');
                submits += 1;
                if predict_every > 0 && submits % predict_every == 0 {
                    out.push_str(&format!(
                        "{{\"event\":\"predict\",\"id\":{},\"time\":{}}}\n",
                        r.id, r.submit_time
                    ));
                }
            }
            ReplayEvent::Start(i) => out.push_str(&format!(
                "{{\"event\":\"start\",\"id\":{},\"time\":{t}}}\n",
                trace.records[i].id
            )),
            ReplayEvent::End(i) => out.push_str(&format!(
                "{{\"event\":\"end\",\"id\":{},\"time\":{t}}}\n",
                trace.records[i].id
            )),
        }
    }
    out.push_str("{\"event\":\"metrics\"}\n{\"event\":\"shutdown\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_event;
    use trout_slurmsim::SimulationBuilder;

    #[test]
    fn every_script_line_parses_and_the_tail_is_metrics_then_shutdown() {
        let trace = SimulationBuilder::anvil_like().jobs(30).seed(3).run();
        let script = replay_script(&trace, 5);
        let mut predicts = 0usize;
        for line in script.lines() {
            let ev = parse_event(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            if matches!(ev, crate::protocol::ClientEvent::Predict { .. }) {
                predicts += 1;
            }
        }
        assert_eq!(predicts, 30 / 5);
        let lines: Vec<&str> = script.lines().collect();
        assert_eq!(lines[lines.len() - 2], "{\"event\":\"metrics\"}");
        assert_eq!(lines[lines.len() - 1], "{\"event\":\"shutdown\"}");
    }

    #[test]
    fn predict_every_zero_emits_no_predicts() {
        let trace = SimulationBuilder::anvil_like().jobs(10).seed(1).run();
        let script = replay_script(&trace, 0);
        assert!(!script.contains("\"predict\""));
    }
}
