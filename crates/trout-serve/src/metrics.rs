//! Serve-side observability: counters and log-bucketed histograms.
//!
//! The daemon is long-lived, so metrics must be O(1) per observation and
//! constant-memory. [`LogHistogram`] buckets values by power of two — enough
//! resolution for latency percentiles (each estimate is at most 2x off,
//! which is the granularity operators act on) while the whole registry
//! serializes in one small JSON object for the `metrics` request and the
//! `BENCH_serve.json` report.

use trout_std::json::Json;

/// Power-of-two bucketed histogram over `u64` values.
///
/// Bucket `i` counts observations in `[2^i, 2^(i+1))`; zero lands in bucket
/// 0. Percentile estimates report the upper bound of the bucket where the
/// cumulative count crosses the rank.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; 40],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 40],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()).saturating_sub(1).min(39) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (2u64 << i).min(self.max.max(1));
            }
        }
        self.max
    }

    /// Serializes count/mean/max, the p50/p90/p99 estimates, and the
    /// non-empty buckets as `[lower_bound, count]` pairs.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Json::Arr(vec![
                    Json::Int(if i == 0 { 0 } else { 1i128 << i }),
                    Json::Int(c as i128),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("count".into(), Json::Int(self.count as i128)),
            ("mean".into(), Json::Num(self.mean())),
            ("max".into(), Json::Int(self.max as i128)),
            ("p50".into(), Json::Int(self.quantile(0.50) as i128)),
            ("p90".into(), Json::Int(self.quantile(0.90) as i128)),
            ("p99".into(), Json::Int(self.quantile(0.99) as i128)),
            ("buckets".into(), Json::Arr(buckets)),
        ])
    }
}

/// All counters and histograms the daemon maintains.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    /// Every request line handled (events, predicts, metrics).
    pub requests_total: u64,
    /// Individual predictions served.
    pub predicts_total: u64,
    /// `predict_batch` flushes.
    pub batches_total: u64,
    /// submit/start/end lifecycle events applied.
    pub state_events_total: u64,
    /// Warm-start refits applied (model hot-swaps).
    pub refits_total: u64,
    /// Requests rejected with an error response.
    pub errors_total: u64,
    /// Feature-assembly latency per predicted job, microseconds.
    pub featurize_us: LogHistogram,
    /// Model forward-pass latency per batch, microseconds.
    pub inference_us: LogHistogram,
    /// End-to-end latency per prediction, microseconds. Each prediction is
    /// charged its full flush (every query in a batch waits for the whole
    /// batch), so the tail here is real worst-case request latency.
    pub predict_us: LogHistogram,
    /// End-to-end latency per `predict_batch` flush, microseconds
    /// (`sum / predicts` gives the batch-amortized cost per prediction).
    pub batch_us: LogHistogram,
    /// Coalesced batch sizes.
    pub batch_size: LogHistogram,
}

impl ServeMetrics {
    /// Serializes the full registry (the `metrics` request's payload).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(vec![
                    ("requests".into(), Json::Int(self.requests_total as i128)),
                    ("predicts".into(), Json::Int(self.predicts_total as i128)),
                    ("batches".into(), Json::Int(self.batches_total as i128)),
                    (
                        "state_events".into(),
                        Json::Int(self.state_events_total as i128),
                    ),
                    ("refits".into(), Json::Int(self.refits_total as i128)),
                    ("errors".into(), Json::Int(self.errors_total as i128)),
                ]),
            ),
            ("featurize_us".into(), self.featurize_us.to_json()),
            ("inference_us".into(), self.inference_us.to_json()),
            ("predict_us".into(), self.predict_us.to_json()),
            ("batch_us".into(), self.batch_us.to_json()),
            ("batch_size".into(), self.batch_size.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bound_the_data() {
        let mut h = LogHistogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        // Bucketed estimates are upper bounds within a factor of 2.
        let p50 = h.quantile(0.5);
        assert!((500..=1024).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1024).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::default();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        let j = h.to_json();
        assert_eq!(j.get("count"), Some(&Json::Int(0)));
    }

    #[test]
    fn registry_serializes_every_section() {
        let mut m = ServeMetrics::default();
        m.predicts_total = 7;
        m.predict_us.record(123);
        let j = m.to_json();
        assert_eq!(
            j.get("counters").and_then(|c| c.get("predicts")),
            Some(&Json::Int(7))
        );
        assert!(j.get("predict_us").is_some());
        assert!(j.get("batch_size").is_some());
    }
}
