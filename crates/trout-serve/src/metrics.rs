//! Serve-side observability: the daemon's registry of counters, gauges and
//! latency histograms.
//!
//! Since the `trout-obs` crate absorbed [`LogHistogram`], [`ServeMetrics`]
//! is a bundle of shared handles into an engine-owned
//! [`Registry`](trout_obs::Registry): each engine gets its own registry (so
//! parallel test engines never cross-count), recording is one relaxed
//! atomic per observation, and the whole set dumps as the legacy JSON
//! sections for the `metrics` request plus Prometheus text exposition via
//! [`ServeMetrics::to_prometheus`].
//!
//! Error accounting is broken down by [`TroutError`] class — protocol
//! garbage from a misbehaving client must be distinguishable from model
//! failures — while the aggregate `errors` counter stays for backward
//! compatibility.

use std::sync::Arc;

use trout_core::{TroutError, LANES};
use trout_obs::trace::{BurnSnapshot, BurnWindow, TraceSink};
pub use trout_obs::LogHistogram;
use trout_obs::{Counter, Gauge, Histogram, Registry};
use trout_std::json::Json;

/// All counters and histograms the daemon maintains, as shared handles
/// into one engine-owned registry. Clones share the underlying atomics.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// The engine's registry (drives the Prometheus exposition).
    pub registry: Arc<Registry>,
    /// Every request line handled (events, predicts, metrics).
    pub requests_total: Counter,
    /// Individual predictions served.
    pub predicts_total: Counter,
    /// `predict_batch` flushes.
    pub batches_total: Counter,
    /// submit/start/end lifecycle events applied.
    pub state_events_total: Counter,
    /// Warm-start refits applied (model hot-swaps).
    pub refits_total: Counter,
    /// Requests rejected with an error response (aggregate over classes).
    pub errors_total: Counter,
    /// Errors by [`TroutError`] class, in variant order (io / parse /
    /// config / model / protocol / overloaded), plus the synthetic
    /// `poisoned` class for engine-mutex poison recoveries — a panicked
    /// session is a failure even though no request line is rejected for it
    /// — and `read_only` for lifecycle events refused by a replication
    /// follower.
    pub errors_by_class: [Counter; 8],
    /// Feature-assembly latency per predicted job, microseconds.
    pub featurize_us: Histogram,
    /// Model forward-pass latency per batch, microseconds.
    pub inference_us: Histogram,
    /// End-to-end latency per prediction, microseconds. Each prediction is
    /// charged its full flush (every query in a batch waits for the whole
    /// batch), so the tail here is real worst-case request latency.
    pub predict_us: Histogram,
    /// End-to-end latency per `predict_batch` flush, microseconds
    /// (`sum / predicts` gives the batch-amortized cost per prediction).
    pub batch_us: Histogram,
    /// Coalesced batch sizes.
    pub batch_size: Histogram,
    /// Drift monitor: predictions joined against a realized queue time.
    pub drift_joined_total: Counter,
    /// Drift monitor: joined predictions within 2x of the outcome.
    pub drift_within_2x_total: Counter,
    /// Drift monitor: class confusion counts in predicted-then-actual
    /// order: quick/quick, quick/long, long/quick, long/long.
    pub drift_confusion: [Counter; 4],
    /// Drift monitor: rolling mean absolute error, minutes.
    pub drift_mae_min: Gauge,
    /// Drift monitor: rolling within-2x fraction.
    pub drift_within_2x: Gauge,
    /// Write-ahead journal: event lines appended (and made durable per the
    /// configured fsync policy) before acknowledgment.
    pub journal_appends_total: Counter,
    /// Engine snapshots written to the state dir.
    pub snapshots_total: Counter,
    /// Snapshot serialization + atomic-write latency, microseconds.
    pub snapshot_write_us: Histogram,
    /// Journal compactions performed (snapshot + truncate).
    pub compactions_total: Counter,
    /// Journal entry lines truncated away by compaction.
    pub compacted_lines_total: Counter,
    /// Replication: followers currently streaming from this shard (leader
    /// side).
    pub replication_followers: Gauge,
    /// Replication: leader watermark minus the slowest connected follower's
    /// acknowledged watermark for this shard (0 with no followers).
    pub replication_lag_events: Gauge,
    /// Replication: high-water mark of `replication_lag_events` over the
    /// daemon's lifetime (the measured divergence-window bound).
    pub replication_lag_peak_events: Gauge,
    /// Replication: journal entries streamed to followers (leader side).
    pub replication_streamed_total: Counter,
    /// Replication: entries applied from the leader's stream (follower
    /// side; also re-journaled locally, so `journal_appends_total` tracks
    /// it).
    pub replication_applied_total: Counter,
    /// Replication: snapshots installed from the leader (follower side —
    /// initial sync or catch-up past a compaction point).
    pub replication_snapshots_installed: Counter,
    /// Journal events replayed during crash recovery.
    pub recovery_replayed_events: Counter,
    /// TCP sessions accepted over the daemon's lifetime.
    pub sessions_total: Counter,
    /// TCP session threads currently tracked (updated at each accept, after
    /// reaping finished handles).
    pub sessions_live: Gauge,
    /// High-water mark of `sessions_live` — the regression guard against
    /// the unbounded JoinHandle growth bug.
    pub sessions_live_peak: Gauge,
    /// Transient accept failures survived (ECONNABORTED and friends — the
    /// connection was lost before the listener could hand it over).
    pub accept_transient_total: Counter,
    /// Accept backoffs taken on fd exhaustion (`EMFILE`/`ENFILE`): the
    /// listener pauses instead of spinning on an error it cannot clear.
    pub accept_backoffs_total: Counter,
    /// Current accept backoff delay in milliseconds (0 while healthy).
    pub accept_backoff_ms: Gauge,
    /// Reactor connections whose response backlog crossed the high-water
    /// mark, pausing reads on that connection (slow-loris backpressure).
    pub reactor_backpressure_total: Counter,
    /// Predictions served per lane, [`LANES`] order (urgent/normal/batch).
    pub lane_predicts_total: [Counter; 3],
    /// Admission-control sheds per lane, [`LANES`] order — every shed is an
    /// explicit `overloaded` response, never a silent drop.
    pub shed_total: [Counter; 3],
    /// Admitted predictions whose queue wait exceeded their latency budget,
    /// per lane ([`LANES`] order). Nonzero for urgent means the scheduler
    /// broke its headline promise.
    pub slo_violations_total: [Counter; 3],
    /// Time a predict spent queued in the batch former before its flush
    /// began, microseconds.
    pub queue_wait_us: Histogram,
    /// Request-scoped tracing: per-stage histograms plus the flight
    /// recorder ring of recently completed traces (DESIGN §14). Purely
    /// observational — never journaled, never in the state oracle.
    pub trace: TraceSink,
    /// SLO burn accounting: 1-second good/violating buckets per lane,
    /// feeding the fast/slow burn-rate gauges.
    pub burn: BurnWindow,
    /// Fast-window (1 min) burn rate per lane, refreshed at each dump.
    pub burn_fast: [Gauge; 3],
    /// Slow-window (5 min) burn rate per lane, refreshed at each dump.
    pub burn_slow: [Gauge; 3],
    /// Drift monitor: predictions still awaiting their realized outcome.
    pub drift_pending_joins: Gauge,
    /// Drift monitor: pending joins purged by the eviction sweep (the job
    /// ended its observation window without ever starting).
    pub drift_purged_total: Counter,
}

/// `errors_by_class` index order and JSON key per class. The first six
/// mirror the [`TroutError`] variants; `poisoned` counts engine-mutex
/// poison recoveries after a session panic; `read_only` counts lifecycle
/// events a replication follower refused.
pub const ERROR_CLASSES: [&str; 8] = [
    "io",
    "parse",
    "config",
    "model",
    "protocol",
    "overloaded",
    "poisoned",
    "read_only",
];

/// Drift confusion cell names, predicted-then-actual.
pub const CONFUSION_CELLS: [&str; 4] = ["quick_quick", "quick_long", "long_quick", "long_long"];

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// A fresh registry with every serve metric registered.
    pub fn new() -> ServeMetrics {
        let r = Arc::new(Registry::new());
        ServeMetrics::register_help(&r);
        let errors_by_class = ERROR_CLASSES.map(|c| r.counter(&format!("serve.errors.{c}_total")));
        let drift_confusion =
            CONFUSION_CELLS.map(|c| r.counter(&format!("serve.drift.confusion_{c}_total")));
        ServeMetrics {
            requests_total: r.counter("serve.requests_total"),
            predicts_total: r.counter("serve.predicts_total"),
            batches_total: r.counter("serve.batches_total"),
            state_events_total: r.counter("serve.state_events_total"),
            refits_total: r.counter("serve.refits_total"),
            errors_total: r.counter("serve.errors_total"),
            errors_by_class,
            featurize_us: r.histogram("serve.featurize_us"),
            inference_us: r.histogram("serve.inference_us"),
            predict_us: r.histogram("serve.predict_us"),
            batch_us: r.histogram("serve.batch_us"),
            batch_size: r.histogram("serve.batch_size"),
            drift_joined_total: r.counter("serve.drift.joined_total"),
            drift_within_2x_total: r.counter("serve.drift.within_2x_total"),
            drift_confusion,
            drift_mae_min: r.gauge("serve.drift.mae_min"),
            drift_within_2x: r.gauge("serve.drift.within_2x"),
            journal_appends_total: r.counter("serve.journal.appends_total"),
            snapshots_total: r.counter("serve.journal.snapshots_total"),
            snapshot_write_us: r.histogram("serve.journal.snapshot_write_us"),
            compactions_total: r.counter("serve.journal.compactions_total"),
            compacted_lines_total: r.counter("serve.journal.compacted_lines_total"),
            replication_followers: r.gauge("serve.replication.followers"),
            replication_lag_events: r.gauge("serve.replication.lag_events"),
            replication_lag_peak_events: r.gauge("serve.replication.lag_peak_events"),
            replication_streamed_total: r.counter("serve.replication.streamed_total"),
            replication_applied_total: r.counter("serve.replication.applied_total"),
            replication_snapshots_installed: r
                .counter("serve.replication.snapshots_installed_total"),
            recovery_replayed_events: r.counter("serve.recovery.replayed_events_total"),
            sessions_total: r.counter("serve.sessions_total"),
            sessions_live: r.gauge("serve.sessions_live"),
            sessions_live_peak: r.gauge("serve.sessions_live_peak"),
            accept_transient_total: r.counter("serve.accept.transient_total"),
            accept_backoffs_total: r.counter("serve.accept.backoffs_total"),
            accept_backoff_ms: r.gauge("serve.accept.backoff_ms"),
            reactor_backpressure_total: r.counter("serve.reactor.backpressure_total"),
            lane_predicts_total: LANES
                .map(|l| r.counter(&format!("serve.lane.{}_predicts_total", l.as_str()))),
            shed_total: LANES
                .map(|l| r.counter(&format!("serve.admission.shed_{}_total", l.as_str()))),
            slo_violations_total: LANES.map(|l| {
                r.counter(&format!(
                    "serve.admission.slo_violations_{}_total",
                    l.as_str()
                ))
            }),
            queue_wait_us: r.histogram("serve.queue_wait_us"),
            trace: TraceSink::new(&r, "serve.trace"),
            burn: BurnWindow::new(),
            burn_fast: LANES.map(|l| r.gauge(&format!("serve.burn_rate.fast_{}", l.as_str()))),
            burn_slow: LANES.map(|l| r.gauge(&format!("serve.burn_rate.slow_{}", l.as_str()))),
            drift_pending_joins: r.gauge("serve.drift.pending_joins"),
            drift_purged_total: r.counter("serve.drift.purged_total"),
            registry: r,
        }
    }

    /// Registers `# HELP` text for the metrics scripted consumers grep
    /// most; names survive [`prom_name`](trout_obs::prom_name) mangling
    /// and the help text is escaped at exposition time.
    fn register_help(r: &Registry) {
        r.set_help("serve.predicts_total", "Individual predictions served");
        r.set_help(
            "serve.burn_rate.fast_urgent",
            "Urgent-lane SLO burn rate over the fast (1 min) window; >1 burns error budget",
        );
        r.set_help(
            "serve.burn_rate.slow_urgent",
            "Urgent-lane SLO burn rate over the slow (5 min) window; >1 burns error budget",
        );
        r.set_help(
            "serve.trace.total_us",
            "End-to-end traced request latency (sum of all pipeline stages)",
        );
        r.set_help(
            "serve.drift.pending_joins",
            "Predictions still awaiting their realized queue time",
        );
    }

    /// Counts one rejected request: the aggregate plus the class counter.
    pub fn record_error(&self, e: &TroutError) {
        self.errors_total.inc();
        let idx = match e {
            TroutError::Io(_) => 0,
            TroutError::Parse(_) => 1,
            TroutError::Config(_) => 2,
            TroutError::Model(_) => 3,
            TroutError::Protocol(_) => 4,
            TroutError::Overloaded { .. } => 5,
            TroutError::ReadOnly(_) => 7,
        };
        self.errors_by_class[idx].inc();
    }

    /// Counts one engine-mutex poison recovery (a session panicked while
    /// holding the engine; the guard was reclaimed and serving continued).
    pub fn record_poisoned(&self) {
        self.errors_total.inc();
        self.errors_by_class[6].inc();
    }

    /// Counts one admission shed in `lane` (also an `overloaded` error).
    pub fn record_shed(&self, lane: trout_core::Lane) {
        self.shed_total[lane.rank()].inc();
        self.record_error(&TroutError::Overloaded { retry_after_ms: 0 });
    }

    /// Serializes the registry in the legacy section layout (the `metrics`
    /// request's payload; the drift section rides in
    /// [`ServeEngine::metrics_json`](crate::ServeEngine::metrics_json)).
    pub fn to_json(&self) -> Json {
        let burn = self.refresh_burn_gauges();
        let by_class: Vec<(String, Json)> = ERROR_CLASSES
            .iter()
            .zip(&self.errors_by_class)
            .map(|(name, c)| (name.to_string(), Json::Int(c.get() as i128)))
            .collect();
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(vec![
                    (
                        "requests".into(),
                        Json::Int(self.requests_total.get() as i128),
                    ),
                    (
                        "predicts".into(),
                        Json::Int(self.predicts_total.get() as i128),
                    ),
                    (
                        "batches".into(),
                        Json::Int(self.batches_total.get() as i128),
                    ),
                    (
                        "state_events".into(),
                        Json::Int(self.state_events_total.get() as i128),
                    ),
                    ("refits".into(), Json::Int(self.refits_total.get() as i128)),
                    ("errors".into(), Json::Int(self.errors_total.get() as i128)),
                    (
                        "journal_appends".into(),
                        Json::Int(self.journal_appends_total.get() as i128),
                    ),
                    (
                        "snapshots".into(),
                        Json::Int(self.snapshots_total.get() as i128),
                    ),
                    (
                        "compactions".into(),
                        Json::Int(self.compactions_total.get() as i128),
                    ),
                    (
                        "recovery_replayed_events".into(),
                        Json::Int(self.recovery_replayed_events.get() as i128),
                    ),
                    (
                        "sessions".into(),
                        Json::Int(self.sessions_total.get() as i128),
                    ),
                ]),
            ),
            ("errors_by_class".into(), Json::Obj(by_class)),
            ("replication".into(), self.replication_to_json()),
            ("admission".into(), self.admission_to_json()),
            ("featurize_us".into(), self.featurize_us.to_json()),
            ("queue_wait_us".into(), self.queue_wait_us.to_json()),
            ("inference_us".into(), self.inference_us.to_json()),
            ("predict_us".into(), self.predict_us.to_json()),
            ("batch_us".into(), self.batch_us.to_json()),
            ("batch_size".into(), self.batch_size.to_json()),
            ("snapshot_write_us".into(), self.snapshot_write_us.to_json()),
            ("burn".into(), burn_snapshot_to_json(&burn)),
        ])
    }

    /// Recomputes the per-lane burn-rate gauges from the window buckets
    /// and returns the snapshot they were computed from. Called at every
    /// JSON/Prometheus dump so the gauges are current without any
    /// background thread.
    pub fn refresh_burn_gauges(&self) -> BurnSnapshot {
        let snap = self.burn.snapshot();
        for rank in 0..LANES.len() {
            self.burn_fast[rank].set(snap.fast[rank].burn_rate());
            self.burn_slow[rank].set(snap.slow[rank].burn_rate());
        }
        snap
    }

    /// The replication section: leader-side follower count and lag, both
    /// sides' streamed/applied totals, and compaction accounting.
    fn replication_to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "followers".into(),
                Json::Int(self.replication_followers.get() as i128),
            ),
            (
                "lag_events".into(),
                Json::Int(self.replication_lag_events.get() as i128),
            ),
            (
                "lag_peak_events".into(),
                Json::Int(self.replication_lag_peak_events.get() as i128),
            ),
            (
                "streamed".into(),
                Json::Int(self.replication_streamed_total.get() as i128),
            ),
            (
                "applied".into(),
                Json::Int(self.replication_applied_total.get() as i128),
            ),
            (
                "snapshots_installed".into(),
                Json::Int(self.replication_snapshots_installed.get() as i128),
            ),
            (
                "compacted_lines".into(),
                Json::Int(self.compacted_lines_total.get() as i128),
            ),
        ])
    }

    /// The scheduler/admission section: per-lane predicts, sheds (plus the
    /// aggregate `shed_total`), and SLO violations, always in lane-priority
    /// order so scripted consumers can grep deterministic field order.
    fn admission_to_json(&self) -> Json {
        let per_lane = |counters: &[Counter; 3]| {
            Json::Obj(
                LANES
                    .iter()
                    .zip(counters)
                    .map(|(l, c)| (l.as_str().to_string(), Json::Int(c.get() as i128)))
                    .collect(),
            )
        };
        let shed_sum: u64 = self.shed_total.iter().map(|c| c.get()).sum();
        Json::Obj(vec![
            ("lane_predicts".into(), per_lane(&self.lane_predicts_total)),
            ("shed".into(), per_lane(&self.shed_total)),
            ("shed_total".into(), Json::Int(shed_sum as i128)),
            (
                "slo_violations".into(),
                per_lane(&self.slo_violations_total),
            ),
        ])
    }

    /// Prometheus text exposition of the engine registry (burn-rate gauges
    /// refreshed first so scrapes always see current windows).
    pub fn to_prometheus(&self) -> String {
        self.refresh_burn_gauges();
        self.registry.to_prometheus()
    }
}

/// The `burn` JSON section: the anchor second plus per-lane good /
/// violating counts and the derived burn rate for both windows, in lane
/// priority order.
pub fn burn_snapshot_to_json(snap: &BurnSnapshot) -> Json {
    let window = |lanes: &[trout_obs::LaneWindow; 3]| {
        Json::Obj(
            LANES
                .iter()
                .zip(lanes)
                .map(|(l, w)| {
                    (
                        l.as_str().to_string(),
                        Json::Obj(vec![
                            ("good".into(), Json::Int(w.good as i128)),
                            ("violating".into(), Json::Int(w.violating as i128)),
                            ("burn_rate".into(), Json::Num(w.burn_rate())),
                        ]),
                    )
                })
                .collect(),
        )
    };
    Json::Obj(vec![
        ("anchor_sec".into(), Json::Int(snap.anchor_sec as i128)),
        ("fast".into(), window(&snap.fast)),
        ("slow".into(), window(&snap.slow)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_serializes_every_section() {
        let m = ServeMetrics::new();
        m.predicts_total.add(7);
        m.predict_us.record(123);
        let j = m.to_json();
        assert_eq!(
            j.get("counters").and_then(|c| c.get("predicts")),
            Some(&Json::Int(7))
        );
        assert!(j.get("predict_us").is_some());
        assert!(j.get("batch_size").is_some());
        assert!(j.get("errors_by_class").is_some());
    }

    #[test]
    fn errors_break_down_by_class_and_keep_the_aggregate() {
        let m = ServeMetrics::new();
        m.record_error(&TroutError::Parse("x".into()));
        m.record_error(&TroutError::Parse("y".into()));
        m.record_error(&TroutError::Protocol("z".into()));
        m.record_error(&TroutError::Model("w".into()));
        m.record_poisoned();
        m.record_error(&TroutError::ReadOnly("follower".into()));
        assert_eq!(m.errors_total.get(), 6, "aggregate stays");
        let j = m.to_json();
        let by = j.get("errors_by_class").unwrap();
        assert_eq!(by.get("parse"), Some(&Json::Int(2)));
        assert_eq!(by.get("protocol"), Some(&Json::Int(1)));
        assert_eq!(by.get("model"), Some(&Json::Int(1)));
        assert_eq!(by.get("io"), Some(&Json::Int(0)));
        assert_eq!(by.get("config"), Some(&Json::Int(0)));
        assert_eq!(by.get("poisoned"), Some(&Json::Int(1)));
        assert_eq!(by.get("read_only"), Some(&Json::Int(1)));
    }

    #[test]
    fn prometheus_dump_carries_serve_and_drift_names() {
        let m = ServeMetrics::new();
        m.predicts_total.inc();
        m.drift_joined_total.inc();
        m.drift_mae_min.set(4.5);
        let text = m.to_prometheus();
        assert!(text.contains("trout_serve_predicts_total 1"));
        assert!(text.contains("trout_serve_drift_joined_total 1"));
        assert!(text.contains("trout_serve_drift_mae_min 4.5"));
        assert!(text.contains("# TYPE trout_serve_predict_us histogram"));
    }

    #[test]
    fn admission_section_counts_sheds_per_lane() {
        let m = ServeMetrics::new();
        m.record_shed(trout_core::Lane::Batch);
        m.record_shed(trout_core::Lane::Batch);
        m.record_shed(trout_core::Lane::Normal);
        m.lane_predicts_total[0].inc();
        m.slo_violations_total[2].inc();
        let j = m.to_json();
        let adm = j.get("admission").expect("admission section");
        assert_eq!(
            adm.get("shed").and_then(|s| s.get("batch")),
            Some(&Json::Int(2))
        );
        assert_eq!(
            adm.get("shed").and_then(|s| s.get("normal")),
            Some(&Json::Int(1))
        );
        assert_eq!(adm.get("shed_total"), Some(&Json::Int(3)));
        assert_eq!(
            adm.get("slo_violations").and_then(|s| s.get("urgent")),
            Some(&Json::Int(0))
        );
        assert_eq!(
            adm.get("lane_predicts").and_then(|s| s.get("urgent")),
            Some(&Json::Int(1))
        );
        // Sheds are overloaded errors, never silent.
        assert_eq!(
            j.get("errors_by_class").and_then(|e| e.get("overloaded")),
            Some(&Json::Int(3))
        );
        assert_eq!(m.errors_total.get(), 3);
    }

    #[test]
    fn clones_share_the_same_registry() {
        let m = ServeMetrics::new();
        let n = m.clone();
        m.requests_total.inc();
        assert_eq!(n.requests_total.get(), 1);
    }
}
