//! The event-driven transport: `poll(2)` readiness over nonblocking
//! sockets, multiplexing many connections per thread.
//!
//! [`run_reactor`] runs the acceptor on the calling thread and spawns a
//! small worker pool of reactor threads. Each accepted connection is handed
//! round-robin to one reactor thread (through a mutex-guarded inbox plus a
//! [`Waker`] self-pipe so a sleeping poller notices immediately) and stays
//! on that thread for life: all of its reads, session logic, and writes run
//! there, so a connection's responses never race with themselves and the
//! wire protocol needs no extra framing. Shard engines are the only shared
//! state, locked exactly as the blocking transports lock them.
//!
//! Per connection the reactor keeps a read buffer, a [`RouterSession`], and
//! a write buffer:
//!
//! * **readable** → drain the socket until `WouldBlock`, feed every
//!   complete line through the session (responses accumulate in the write
//!   buffer), then flush queued predicts — no more complete lines means the
//!   client is waiting, the same heuristic the blocking loop uses when its
//!   `BufReader` runs dry.
//! * **writable** → push the write buffer until `WouldBlock`.
//! * **backpressure** → a connection whose write backlog crosses the
//!   high-water mark stops being read (its `POLLIN` interest is dropped)
//!   until the backlog drains. A slow-loris client that never reads its
//!   responses stalls *itself* — the kernel's TCP window fills, our backlog
//!   cap holds, and every other connection on the thread keeps being
//!   served.
//!
//! A connection dies on I/O error, on EOF once its responses are flushed,
//! after a `shutdown` ack drains, or when a single request line exceeds the
//! line cap (a malformed flood with no newline would otherwise grow the
//! read buffer without bound). Its terminal error is recorded against
//! shard 0's registry, exactly like a blocking session thread's.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use trout_core::TroutError;
use trout_std::evloop::{poll_fds, set_nonblocking, PollFd, Waker, POLLIN, POLLOUT};

use crate::metrics::ServeMetrics;
use crate::router::{Flow, RouterSession};
use crate::server::{AcceptBackoff, DEFAULT_BATCH_MAX};
use crate::shard::ShardSet;

/// Write-backlog high-water mark: above this, stop reading the connection.
const HIGH_WATER: usize = 256 * 1024;
/// Hard cap on a single request line (bytes) — beyond it the connection is
/// a flood, not a client.
const LINE_MAX: usize = 1 << 20;
/// Socket read chunk size.
const READ_CHUNK: usize = 16 * 1024;
/// Poll timeout: an idle reactor re-checks its shutdown flag this often
/// even if a waker byte is lost to a bug.
const POLL_TIMEOUT_MS: i32 = 250;

/// Reactor transport knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Reactor threads (0 = auto: up to 4, bounded by the machine).
    pub threads: usize,
    /// Predict coalescing cap per connection (0 = default).
    pub batch_max: usize,
    /// Stop accepting after this many connections (`None` = serve forever);
    /// already-accepted connections are always drained before returning.
    pub max_conns: Option<usize>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            threads: 0,
            batch_max: 0,
            max_conns: None,
        }
    }
}

fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        return threads;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(4).max(1)
}

/// One reactor thread's handoff state.
struct Mailbox {
    waker: Waker,
    inbox: Mutex<Vec<TcpStream>>,
    done: AtomicBool,
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    session: RouterSession,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    read_closed: bool,
    closing: bool,
    dead: bool,
    backpressured: bool,
}

impl Conn {
    fn new(stream: TcpStream, n_shards: usize, batch_max: usize) -> Conn {
        Conn {
            stream,
            session: RouterSession::new(n_shards, batch_max),
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            read_closed: false,
            closing: false,
            dead: false,
            backpressured: false,
        }
    }

    /// Unsent response bytes.
    fn backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Whether this connection has nothing left to do and can be dropped.
    fn finished(&self) -> bool {
        self.dead
            || (self.closing && self.backlog() == 0)
            || (self.read_closed && self.backlog() == 0 && self.session.queued() == 0)
    }

    /// The poll interest set for the next readiness wait.
    fn interest(&self) -> i16 {
        let mut events = 0i16;
        if !self.read_closed && !self.closing && self.backlog() < HIGH_WATER {
            events |= POLLIN;
        }
        if self.backlog() > 0 {
            events |= POLLOUT;
        }
        events
    }
}

/// Serves the shard set with an event-driven reactor: nonblocking accepted
/// sockets, `cfg.threads` poller threads, shard fan-out per session. The
/// acceptor (this thread) applies the same backoff-classified accept
/// handling as [`run_tcp`](crate::server::run_tcp). On return, all accepted
/// connections are drained and journals are synced.
pub fn run_reactor(
    shards: Arc<ShardSet>,
    listener: TcpListener,
    cfg: ReactorConfig,
) -> Result<(), TroutError> {
    let threads = resolve_threads(cfg.threads);
    let batch_max = if cfg.batch_max == 0 {
        DEFAULT_BATCH_MAX
    } else {
        cfg.batch_max
    };
    let metrics = shards.metrics0();
    let live = Arc::new(AtomicU64::new(0));

    let mailboxes: Vec<Arc<Mailbox>> = (0..threads)
        .map(|_| {
            Ok(Arc::new(Mailbox {
                waker: Waker::new().map_err(TroutError::Io)?,
                inbox: Mutex::new(Vec::new()),
                done: AtomicBool::new(false),
            }))
        })
        .collect::<Result<_, TroutError>>()?;
    let mut workers = Vec::with_capacity(threads);
    for mailbox in &mailboxes {
        let mailbox = Arc::clone(mailbox);
        let shards = Arc::clone(&shards);
        let metrics = metrics.clone();
        let live = Arc::clone(&live);
        workers.push(std::thread::spawn(move || {
            reactor_thread(&shards, &mailbox, &metrics, &live, batch_max)
        }));
    }

    let mut backoff = AcceptBackoff::default();
    let mut accepted = 0usize;
    let accept_result: Result<(), TroutError> = (|| {
        for stream in listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    backoff.on_error(&metrics, e)?;
                    continue;
                }
            };
            backoff.on_success(&metrics);
            let target = &mailboxes[accepted % threads];
            target.inbox.lock().expect("inbox poisoned").push(stream);
            target.waker.wake();
            metrics.sessions_total.inc();
            let now_live = (live.fetch_add(1, Ordering::Relaxed) + 1) as f64;
            metrics.sessions_live.set(now_live);
            if now_live > metrics.sessions_live_peak.get() {
                metrics.sessions_live_peak.set(now_live);
            }
            accepted += 1;
            if cfg.max_conns.is_some_and(|m| accepted >= m) {
                break;
            }
        }
        Ok(())
    })();

    for mailbox in &mailboxes {
        mailbox.done.store(true, Ordering::SeqCst);
        mailbox.waker.wake();
    }
    for worker in workers {
        if worker.join().is_err() {
            trout_obs::log_error!("serve", "reactor thread panicked");
        }
    }
    metrics.sessions_live.set(0.0);
    shards.sync_journals()?;
    accept_result
}

/// One poller thread: multiplexes its connections until told to stop *and*
/// every connection has drained.
fn reactor_thread(
    shards: &ShardSet,
    mailbox: &Mailbox,
    metrics: &ServeMetrics,
    live: &AtomicU64,
    batch_max: usize,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    loop {
        let done = mailbox.done.load(Ordering::SeqCst);
        if done && conns.is_empty() && mailbox.inbox.lock().expect("inbox poisoned").is_empty() {
            return;
        }

        fds.clear();
        fds.push(PollFd::new(mailbox.waker.poll_fd(), POLLIN));
        for conn in &conns {
            fds.push(PollFd::new(conn.stream.as_raw_fd(), conn.interest()));
        }
        // A held coalescing window bounds how long poll may sleep: wake at
        // the earliest due instant so the flush lands on time even if no fd
        // turns readable. The wait is *floored* to ms — a window flushes as
        // late as its budget allows, so rounding the sleep up would
        // overshoot the deadline by up to 1 ms and turn the hold itself
        // into an SLO violation; flooring wakes at most 1 ms early and the
        // deadline pass re-checks (a sub-ms zero-timeout spin at worst).
        let mut timeout_ms = POLL_TIMEOUT_MS;
        if conns.iter().any(|c| c.session.pending() > 0) {
            let now = shards.clock().now_micros();
            for conn in &conns {
                if let Some(due) = conn.session.due_at(shards) {
                    let wait = due.saturating_sub(now) / 1_000;
                    timeout_ms = timeout_ms.min(wait.min(POLL_TIMEOUT_MS as u64) as i32);
                }
            }
        }
        if let Err(e) = poll_fds(&mut fds, timeout_ms) {
            trout_obs::log_error!("serve", "reactor poll failed: {e}");
            metrics.record_error(&TroutError::Io(e));
            // Poll failing outright (ENOMEM, EINVAL from fd overflow) cannot
            // be served through; drop every connection rather than spin.
            conns.clear();
            continue;
        }

        if fds[0].readable() {
            mailbox.waker.drain();
        }
        // Adopt newly accepted connections.
        let incoming: Vec<TcpStream> =
            std::mem::take(&mut *mailbox.inbox.lock().expect("inbox poisoned"));
        for stream in incoming {
            match set_nonblocking(stream.as_raw_fd()) {
                Ok(()) => conns.push(Conn::new(stream, shards.len(), batch_max)),
                Err(e) => {
                    metrics.record_error(&TroutError::Io(e));
                    live.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }

        for (i, conn) in conns.iter_mut().enumerate() {
            // fds[0] is the waker; new conns past the polled set wait a turn.
            let Some(slot) = fds.get(i + 1) else { break };
            if slot.error() {
                // Hard socket error: one last read pass surfaces the errno.
                handle_readable(conn, shards, metrics);
                conn.dead = true;
                continue;
            }
            if slot.writable() {
                handle_writable(conn, metrics);
            }
            if slot.readable() && !conn.dead {
                handle_readable(conn, shards, metrics);
                // Common case: the socket can take the response right now —
                // don't wait a poll round-trip to send it.
                if conn.backlog() > 0 && !conn.dead {
                    handle_writable(conn, metrics);
                }
            }
            track_backpressure(conn, metrics);
        }

        // Deadline pass: flush any window whose hold time has expired on
        // the set's clock, independent of socket readiness.
        for conn in conns.iter_mut() {
            if conn.dead || conn.closing || conn.session.pending() == 0 {
                continue;
            }
            match conn.session.flush_if_due(shards, &mut conn.wbuf) {
                Ok(true) => {
                    if conn.backlog() > 0 {
                        handle_writable(conn, metrics);
                    }
                    track_backpressure(conn, metrics);
                }
                Ok(false) => {}
                Err(e) => {
                    metrics.record_error(&e);
                    conn.dead = true;
                }
            }
        }

        let before = conns.len();
        conns.retain(|c| !c.finished());
        let closed = before - conns.len();
        if closed > 0 {
            let now_live = live
                .fetch_sub(closed as u64, Ordering::Relaxed)
                .saturating_sub(closed as u64);
            metrics.sessions_live.set(now_live as f64);
        }
    }
}

/// Counts the moment a connection crosses into backpressure (edge, not
/// level — one increment per stall, however many poll rounds it lasts).
fn track_backpressure(conn: &mut Conn, metrics: &ServeMetrics) {
    let over = conn.backlog() >= HIGH_WATER;
    if over && !conn.backpressured {
        metrics.reactor_backpressure_total.inc();
        trout_obs::log_warn!(
            "serve",
            "connection write backlog hit {} bytes; pausing reads until it drains",
            conn.backlog()
        );
    }
    conn.backpressured = over;
}

/// Drains the socket, feeds complete lines through the session, flushes
/// queued predicts into the write buffer.
fn handle_readable(conn: &mut Conn, shards: &ShardSet, metrics: &ServeMetrics) {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                if conn.rbuf.len() > LINE_MAX && !conn.rbuf.contains(&b'\n') {
                    let e = TroutError::Protocol(format!(
                        "request line exceeded {LINE_MAX} bytes without a newline"
                    ));
                    metrics.record_error(&e);
                    // A client flooding unframed bytes is a protocol fault
                    // worth a flight dump: the recent traces show what the
                    // daemon was serving when the connection went bad.
                    shards.flight_dump("line_overflow", 8);
                    conn.dead = true;
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                metrics.record_error(&TroutError::Io(e));
                conn.dead = true;
                return;
            }
        }
    }
    process_lines(conn, shards, metrics);
}

/// Feeds every complete buffered line through the router session.
fn process_lines(conn: &mut Conn, shards: &ShardSet, metrics: &ServeMetrics) {
    let mut consumed = 0usize;
    while let Some(rel) = conn.rbuf[consumed..].iter().position(|&b| b == b'\n') {
        let end = consumed + rel;
        let line = String::from_utf8_lossy(&conn.rbuf[consumed..end]).into_owned();
        consumed = end + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match conn.session.handle_line(shards, trimmed, &mut conn.wbuf) {
            Ok(Flow::Continue) => {}
            Ok(Flow::Shutdown) => {
                conn.closing = true;
                break;
            }
            Err(e) => {
                // Writing to the in-memory buffer cannot fail; anything
                // surfacing here is engine-fatal for this connection.
                metrics.record_error(&e);
                conn.dead = true;
                break;
            }
        }
    }
    conn.rbuf.drain(..consumed);
    // No more complete lines: the client is waiting. Windows holding any
    // v1 predict (or a resolved shed) are due immediately — the PR 6
    // flush-on-drain heuristic those clients were built against. A pure-v2
    // window instead holds for its deadline (`due_at`), letting the batch
    // former keep coalescing; the reactor loop's due-flush pass and its
    // deadline-derived poll timeout guarantee the flush happens on time.
    if !conn.dead && !conn.closing && conn.session.pending() > 0 {
        if let Err(e) = conn.session.flush_if_due(shards, &mut conn.wbuf) {
            metrics.record_error(&e);
            conn.dead = true;
        }
    }
}

/// Pushes the write backlog until the socket would block.
fn handle_writable(conn: &mut Conn, metrics: &ServeMetrics) {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                metrics.record_error(&TroutError::Io(e));
                conn.dead = true;
                return;
            }
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > 64 * 1024 {
        // Reclaim sent prefix so a long-lived slow reader's buffer stays
        // proportional to its backlog, not its history.
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
}
