//! Deterministic battery for the v2 scheduling layer (DESIGN §12):
//! deadline-held coalescing windows, priority-lane flush order, admission
//! control, and the v1 compatibility contract.
//!
//! Every test drives the same [`RouterSession`] the transports use, against
//! a [`ShardSet`] whose clock is a [`ManualClock`] — time moves only when a
//! test says so, which makes hold/flush decisions (and therefore response
//! byte streams) reproducible on any machine at any load.

use std::sync::Arc;

use trout_serve::protocol::submit_line;
use trout_serve::{run_session, RouterSession, SchedulerConfig, ServeConfig, ShardSet};
use trout_slurmsim::{JobRecord, SimulationBuilder};
use trout_std::clock::ManualClock;
use trout_std::json::Json;
use trout_std::rng::SplitMix64;

fn cfg() -> ServeConfig {
    ServeConfig {
        refit_every: 0,
        seed: 5,
        ..Default::default()
    }
}

/// A shard set on a hand-cranked clock, plus the clock handle and a pool of
/// submitted (pending) jobs to predict against.
fn manual_set(
    n_shards: usize,
    sched: SchedulerConfig,
) -> (ShardSet, Arc<ManualClock>, Vec<JobRecord>) {
    let clock = Arc::new(ManualClock::at(1_000_000));
    let set = ShardSet::bootstrap(n_shards, 150, &cfg())
        .with_scheduler(sched)
        .with_clock(clock.clone());
    let live = SimulationBuilder::anvil_like().jobs(30).seed(6).run();
    let mut session = RouterSession::new(set.len(), 64);
    let mut sink = Vec::new();
    for rec in &live.records {
        session
            .handle_line(&set, &submit_line(rec), &mut sink)
            .unwrap();
    }
    (set, clock, live.records)
}

fn v2_predict(id: u64, time: i64, lane: &str, deadline_ms: Option<u64>) -> String {
    match deadline_ms {
        Some(d) => format!(
            "{{\"v\":2,\"event\":\"predict\",\"id\":{id},\"time\":{time},\
             \"lane\":\"{lane}\",\"deadline_ms\":{d}}}"
        ),
        None => format!(
            "{{\"v\":2,\"event\":\"predict\",\"id\":{id},\"time\":{time},\"lane\":\"{lane}\"}}"
        ),
    }
}

fn v1_predict(id: u64, time: i64) -> String {
    format!("{{\"event\":\"predict\",\"id\":{id},\"time\":{time}}}")
}

#[test]
fn pure_v2_window_holds_until_the_deadline_forces_a_flush() {
    let (set, clock, recs) = manual_set(1, SchedulerConfig::default());
    let mut session = RouterSession::new(set.len(), 64);
    let mut out = Vec::new();
    let t = recs[0].submit_time;
    session
        .handle_line(
            &set,
            &v2_predict(recs[0].id, t, "normal", Some(200)),
            &mut out,
        )
        .unwrap();
    session
        .handle_line(
            &set,
            &v2_predict(recs[1].id, t, "normal", Some(500)),
            &mut out,
        )
        .unwrap();
    assert_eq!(session.pending(), 2);
    // Tightest deadline is 200 ms out, minus the 2-query drain estimate
    // (2 × est_predict_us): the window is due at 1_000_000 + 200_000 − 300.
    assert_eq!(
        session.due_at(&set),
        Some(1_000_000 + 200_000 - 2 * set.scheduler().est_predict_us)
    );
    assert!(!session.flush_if_due(&set, &mut out).unwrap());
    clock.advance(100_000);
    assert!(
        !session.flush_if_due(&set, &mut out).unwrap(),
        "100 ms into a 200 ms budget the window keeps coalescing"
    );
    assert!(out.is_empty(), "no responses before the flush");
    clock.advance(100_000);
    assert!(session.flush_if_due(&set, &mut out).unwrap());
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains(&format!("\"id\":{}", recs[0].id)));
    assert!(lines[1].contains(&format!("\"id\":{}", recs[1].id)));
    assert!(
        lines[0].contains("\"lane\":\"normal\""),
        "v2 responses echo the lane: {}",
        lines[0]
    );
    assert_eq!(session.pending(), 0);
}

#[test]
fn any_v1_predict_makes_the_window_due_immediately() {
    let (set, _clock, recs) = manual_set(1, SchedulerConfig::default());
    let mut session = RouterSession::new(set.len(), 64);
    let mut out = Vec::new();
    let t = recs[0].submit_time;
    session
        .handle_line(
            &set,
            &v2_predict(recs[0].id, t, "normal", Some(500)),
            &mut out,
        )
        .unwrap();
    assert_ne!(session.due_at(&set), Some(0), "pure v2 window is held");
    session
        .handle_line(&set, &v1_predict(recs[1].id, t), &mut out)
        .unwrap();
    assert_eq!(
        session.due_at(&set),
        Some(0),
        "a v1 client predates deadline-holding; its window flushes on drain"
    );
    assert!(session.flush_if_due(&set, &mut out).unwrap());
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.lines().count(), 2);
}

#[test]
fn urgent_executes_before_normal_at_flush_but_responses_keep_request_order() {
    let dir = std::env::temp_dir().join(format!("trout_sched_order_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (set, _clock, recs) = manual_set(1, SchedulerConfig::default());
    set.open_state_dir(&dir, 0, false).unwrap();
    let mut session = RouterSession::new(set.len(), 64);
    let mut out = Vec::new();
    let t = recs[0].submit_time;
    // Request order: normal, batch, urgent.
    session
        .handle_line(&set, &v2_predict(recs[0].id, t, "normal", None), &mut out)
        .unwrap();
    session
        .handle_line(&set, &v2_predict(recs[1].id, t, "batch", None), &mut out)
        .unwrap();
    session
        .handle_line(&set, &v2_predict(recs[2].id, t, "urgent", None), &mut out)
        .unwrap();
    session.flush(&set, &mut out).unwrap();

    // Responses: strict request order, each echoing its lane.
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains(&format!("\"id\":{}", recs[0].id)));
    assert!(lines[0].contains("\"lane\":\"normal\""));
    assert!(lines[1].contains(&format!("\"id\":{}", recs[1].id)));
    assert!(lines[1].contains("\"lane\":\"batch\""));
    assert!(lines[2].contains(&format!("\"id\":{}", recs[2].id)));
    assert!(lines[2].contains("\"lane\":\"urgent\""));

    // Execution order: the journal appends one predict line per executed
    // query, in execution order — urgent first, then normal, then batch.
    let journal =
        std::fs::read_to_string(dir.join("shard-000").join(trout_serve::JOURNAL_FILE)).unwrap();
    let predicts: Vec<&str> = journal.lines().filter(|l| l.contains("predict")).collect();
    assert_eq!(predicts.len(), 3, "journal:\n{journal}");
    assert!(
        predicts[0].contains(&format!("\"id\":{}", recs[2].id))
            && predicts[0].contains("\"lane\":\"urgent\""),
        "urgent executes first: {}",
        predicts[0]
    );
    assert!(predicts[1].contains(&format!("\"id\":{}", recs[0].id)));
    assert!(predicts[2].contains(&format!("\"id\":{}", recs[1].id)));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scheduler tuned so the normal lane can only absorb two in-flight
/// predicts: 400 ms budget at an estimated 200 ms per prediction admits a
/// request only while `work_ahead ≤ 1`.
fn tight_sched() -> SchedulerConfig {
    SchedulerConfig {
        default_deadline_ms: [2_000, 400, 5_000],
        est_predict_us: 200_000,
    }
}

#[test]
fn overload_sheds_with_typed_retry_after_and_urgent_still_lands() {
    let (set, _clock, recs) = manual_set(1, tight_sched());
    let mut session = RouterSession::new(set.len(), 64);
    let mut out = Vec::new();
    let t = recs[0].submit_time;
    // Five normal predicts: the first two fit the 400 ms budget, the rest
    // are shed at admission. An urgent predict then bypasses the normal
    // backlog entirely (work ahead of urgent counts only the urgent lane).
    for rec in recs.iter().take(5) {
        session
            .handle_line(&set, &v2_predict(rec.id, t, "normal", None), &mut out)
            .unwrap();
    }
    session
        .handle_line(&set, &v2_predict(recs[5].id, t, "urgent", None), &mut out)
        .unwrap();
    assert_eq!(session.queued(), 3, "2 normal + 1 urgent admitted");
    assert_eq!(session.pending(), 6, "sheds still own a window position");
    session.flush(&set, &mut out).unwrap();

    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6, "one response per request:\n{text}");
    for (k, line) in lines.iter().enumerate() {
        match k {
            0 | 1 => assert!(
                line.contains("\"ok\":true") && line.contains(&format!("\"id\":{}", recs[k].id)),
                "position {k} admitted: {line}"
            ),
            2 | 3 | 4 => {
                assert!(line.contains("\"ok\":false"), "position {k} shed: {line}");
                assert!(line.contains("overloaded"), "typed class: {line}");
                // excess work = 1 queued beyond the cap × 200 ms estimate.
                assert!(
                    line.contains("\"retry_after_ms\":200"),
                    "retry hint: {line}"
                );
            }
            _ => assert!(
                line.contains("\"ok\":true")
                    && line.contains(&format!("\"id\":{}", recs[5].id))
                    && line.contains("\"lane\":\"urgent\""),
                "urgent bypasses the normal backlog: {line}"
            ),
        }
    }

    // The shed is visible in the merged metrics: per-lane counter, total,
    // and the `overloaded` error class.
    let m = set.metrics_json();
    let admission = m.get("admission").expect("admission section");
    assert_eq!(
        admission.get("shed").and_then(|s| s.get("normal")),
        Some(&Json::Int(3))
    );
    assert_eq!(admission.get("shed_total"), Some(&Json::Int(3)));
    assert_eq!(
        m.get("errors_by_class").and_then(|e| e.get("overloaded")),
        Some(&Json::Int(3))
    );
}

#[test]
fn v1_responses_carry_no_lane_and_default_to_the_normal_budget() {
    let (set, _clock, recs) = manual_set(2, SchedulerConfig::default());
    let mut session = RouterSession::new(set.len(), 64);
    let mut out = Vec::new();
    let t = recs[0].submit_time;
    session
        .handle_line(&set, &v1_predict(recs[0].id, t), &mut out)
        .unwrap();
    session
        .handle_line(&set, &v2_predict(recs[1].id, t, "normal", None), &mut out)
        .unwrap();
    session.flush(&set, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(
        !lines[0].contains("lane"),
        "v1 response bytes are the PR 6 shape: {}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"lane\":\"normal\""),
        "v2 opts into the echo: {}",
        lines[1]
    );
    // Both lanes landed in the same lane counter: v1 defaulted to normal.
    let m = set.metrics_json();
    assert_eq!(
        m.get("admission")
            .and_then(|a| a.get("lane_predicts"))
            .and_then(|l| l.get("normal")),
        Some(&Json::Int(2))
    );
}

use trout_std::proptest_lite::vec_of;
use trout_std::{prop_assert, prop_assert_eq, proptest_lite};

proptest_lite! {
    // Arbitrary interleavings of lanes, explicit deadlines, v1/v2 envelopes,
    // unknown ids, and clock advances: every request line gets exactly one
    // response, in request order; sheds are explicit `overloaded` errors
    // (never silence, never starvation); ghost ids fail in place; only v2
    // responses carry the lane echo.
    #[cases(12)]
    fn interleaved_lanes_and_deadlines_answer_every_position(
        picks in vec_of(0u64..1_000_000, 4..40),
        seed in 0u64..u64::MAX
    ) {
        let (set, clock, recs) = manual_set(2, SchedulerConfig {
            // Small enough caps that heavy cases actually shed.
            default_deadline_ms: [400, 300, 2_000],
            est_predict_us: 50_000,
        });
        let mut rng = SplitMix64::new(seed);
        let mut session = RouterSession::new(set.len(), 8);
        let mut out = Vec::new();
        let t = recs[0].submit_time;
        // (requested id, was the request v2?) per position; ghost ids are
        // recorded as None.
        let mut requests: Vec<(Option<u64>, bool)> = Vec::new();
        for pick in &picks {
            let ghost = pick % 7 == 6;
            let id = if ghost { 88_000_000 + pick } else { recs[(pick % 20) as usize].id };
            let v2 = pick % 3 != 0;
            let line = if v2 {
                let lane = ["urgent", "normal", "batch"][(pick % 3) as usize];
                let deadline = (pick % 5 == 0).then_some(100 + pick % 400);
                v2_predict(id, t, lane, deadline)
            } else {
                v1_predict(id, t)
            };
            session.handle_line(&set, &line, &mut out).unwrap();
            requests.push(((!ghost).then_some(id), v2));
            if rng.next_below(4) == 0 {
                clock.advance(rng.next_below(200_000));
                session.flush_if_due(&set, &mut out).unwrap();
            }
        }
        // No starvation: advancing past every budget drains the window.
        clock.advance(10_000_000);
        session.flush_if_due(&set, &mut out).unwrap();
        prop_assert_eq!(session.pending(), 0, "window drained");

        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), requests.len(), "one response per request");
        for (k, ((id, v2), line)) in requests.iter().zip(&lines).enumerate() {
            if line.contains("\"ok\":true") {
                let id = id.expect("ghost ids never succeed");
                prop_assert!(
                    line.contains(&format!("\"id\":{id}")),
                    "position {} answered out of order: {}", k, line
                );
                prop_assert_eq!(
                    line.contains("\"lane\""), *v2,
                    "lane echo is v2-only: {}", line
                );
            } else if line.contains("overloaded") {
                prop_assert!(
                    line.contains("\"retry_after_ms\""),
                    "sheds carry the retry hint: {}", line
                );
            }
        }
        // Bookkeeping: every admission was released at flush.
        for lane in trout_core::LANES {
            prop_assert_eq!(set.admission().depth(lane), 0, "lane queue drained");
        }
    }
}

/// The full scheduling path — lanes, deadlines, sheds — replayed through
/// `run_session` on 2 shards under `TROUT_THREADS=1` and `=4`: the response
/// transcript and the admission metrics must be byte-identical. Admission
/// and flush decisions read only the injected clock and configured
/// estimates, never wall time or thread count.
#[test]
fn thread_count_never_changes_scheduled_bytes() {
    let script = {
        let live = SimulationBuilder::anvil_like().jobs(30).seed(6).run();
        let mut s = String::new();
        for rec in &live.records {
            s.push_str(&submit_line(rec));
            s.push('\n');
        }
        let t = live.records[0].submit_time;
        for (k, rec) in live.records.iter().cycle().take(90).enumerate() {
            let lane = ["urgent", "normal", "batch"][k % 3];
            s.push_str(&v2_predict(rec.id, t, lane, (k % 4 == 0).then_some(150)));
            s.push('\n');
        }
        s.push_str("{\"event\":\"shutdown\"}\n");
        s
    };
    let run = |threads: &str| {
        std::env::set_var("TROUT_THREADS", threads);
        let set = ShardSet::bootstrap(2, 150, &cfg())
            .with_scheduler(tight_sched())
            .with_clock(Arc::new(ManualClock::at(1_000_000)));
        let mut out = Vec::new();
        run_session(&set, std::io::Cursor::new(script.clone()), &mut out, 8).unwrap();
        let admission = set.metrics_json().get("admission").unwrap().to_string();
        std::env::remove_var("TROUT_THREADS");
        (String::from_utf8(out).unwrap(), admission)
    };
    let (t1, m1) = run("1");
    let (t4, m4) = run("4");
    assert_eq!(t1, t4, "transcripts diverged across TROUT_THREADS");
    assert_eq!(m1, m4, "admission metrics diverged across TROUT_THREADS");
    assert!(
        m1.contains("\"shed_total\":") && !m1.contains("\"shed_total\":0"),
        "the tight scheduler actually shed under this load: {m1}"
    );
}
