//! Proves the serve predict path is allocation-free at steady state.
//!
//! "Steady state" is the daemon's dominant regime: pending jobs whose raw
//! feature rows are already cached being re-predicted as the queue evolves.
//! On that path everything is pre-sized — the incremental snapshot answers
//! O(1) from its live aggregates, the feature row assembles and scales in
//! place, the batch matrix and model scratch reshape within capacity, and
//! the result slots overwrite in place — so a whole `predict_batch_into`
//! flush must touch the global allocator **exactly zero** times, in both
//! the exact and the packed-f32 inference modes.
//!
//! Paths deliberately outside the guarantee: the first predict of a job
//! (clones its raw row into the refit cache), journaling (serializes event
//! lines; needs a state dir), error slots (format their message), and
//! refits.

use trout_obs::trace::{Stage, TraceRecord, N_STAGES};
use trout_serve::engine::PredictQuery;
use trout_serve::{ServeConfig, ServeEngine};
use trout_slurmsim::SimulationBuilder;
use trout_std::alloc_count::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Allocations in one fully-warmed predict flush over `BATCH` pending jobs.
fn steady_state_allocations(infer_f32: bool) -> u64 {
    const BATCH: usize = 8;
    let cfg = ServeConfig {
        refit_every: 0,
        seed: 7,
        infer_f32,
        ..Default::default()
    };
    let mut engine = ServeEngine::bootstrap(300, &cfg);
    let live = SimulationBuilder::anvil_like().jobs(64).seed(8).run();
    // Submit a backlog and keep it pending; probe at the latest submit
    // instant so every query rides the snapshot fast path.
    let probe_t = live.records[BATCH - 1].submit_time;
    let mut queries = Vec::with_capacity(BATCH);
    for rec in live.records.iter().take(BATCH) {
        let id = rec.id;
        engine.apply_submit(rec.clone()).unwrap();
        queries.push(PredictQuery::new(id, probe_t));
    }

    let mut results = Vec::new();
    // Warm-up: the first flush caches raw rows and sizes every buffer; the
    // second confirms the shapes.
    engine.predict_batch_into(&queries, &mut results);
    engine.predict_batch_into(&queries, &mut results);
    assert!(results.iter().all(|r| r.is_ok()), "warm-up must succeed");

    // The tracing pipeline rides the same hot path: a flush with tracing on
    // additionally builds one TraceRecord per traced predict, records it
    // into the sink's ring + stage histograms, and ticks the burn window.
    // All of that must be allocation-free too, so it joins the counted
    // region.
    let sink = engine.metrics.trace.clone();
    let burn = engine.metrics.burn.clone();
    let record = TraceRecord {
        trace_id: 0xfeed_beef,
        lane: 1,
        end_us: 1_000,
        total_us: 420,
        stages: [60; N_STAGES],
    };
    sink.record(&record); // warm nothing — record never allocates, proven below

    let (_, during) = CountingAllocator::count(|| {
        engine.predict_batch_into(&queries, &mut results);
        for (k, _) in queries.iter().enumerate() {
            let mut r = record;
            r.trace_id = k as u64;
            sink.record(&r);
            burn.record(1, k % 2 == 0, 1_000 + k as u64);
        }
    });
    assert_eq!(results.len(), BATCH);
    assert!(results.iter().all(|r| r.is_ok()));
    assert!(sink.recorded() >= BATCH as u64);
    assert!(sink.stage_histogram(Stage::Parse).count() >= BATCH as u64);
    during
}

#[test]
fn steady_state_predict_is_allocation_free() {
    // One thread keeps the (already sub-threshold) kernels serial, so the
    // thread-count env read never happens inside the counted region.
    std::env::set_var("TROUT_THREADS", "1");
    for infer_f32 in [false, true] {
        let n = steady_state_allocations(infer_f32);
        assert_eq!(
            n, 0,
            "infer_f32={infer_f32}: steady-state predict flush allocated {n} times"
        );
    }
    std::env::remove_var("TROUT_THREADS");
}
