//! Replication end-to-end tests: a leader shard set streams its journals
//! over localhost TCP to a hot-standby follower, the leader is killed
//! abruptly (streams dropped mid-flight, indistinguishable from `kill -9`
//! on the follower side), the follower is promoted, and its state must be
//! **byte-identical** to the leader's at the follower's watermark — the
//! same oracle the crash-recovery tests use.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use trout_serve::{run_follower, run_session, spawn_replication_listener, ServeConfig, ShardSet};
use trout_slurmsim::SimulationBuilder;
use trout_std::json::Json;

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("trout_replication_tests")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fresh shard set with the bootstrap arguments every replica shares —
/// deterministic construction is what lets a follower start from bootstrap
/// and converge on the leader's state by replaying its journal.
fn shardset(n: usize) -> ShardSet {
    ShardSet::bootstrap(
        n,
        200,
        &ServeConfig {
            refit_every: 64,
            seed: 3,
            ..Default::default()
        },
    )
}

/// Feeds `script` through a session and returns the response transcript.
fn serve(shards: &ShardSet, script: &str) -> String {
    let mut out = Vec::new();
    run_session(
        shards,
        std::io::Cursor::new(script.to_string()),
        &mut out,
        32,
    )
    .unwrap();
    String::from_utf8(out).unwrap()
}

/// Polls until `cond` holds or `secs` elapse (panicking with `what`).
fn wait_for(what: &str, secs: u64, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn follower_streams_kill_leader_promote_byte_identical() {
    let leader = Arc::new(shardset(2));
    let ldir = state_dir("stream_leader");
    leader.open_state_dir(&ldir, 32, false).unwrap();
    let hub = spawn_replication_listener(
        Arc::clone(&leader),
        ldir.clone(),
        TcpListener::bind("127.0.0.1:0").unwrap(),
    )
    .unwrap();
    let addr = hub.addr().to_string();

    let follower = Arc::new(shardset(2));
    let fdir = state_dir("stream_follower");
    follower.open_state_dir(&fdir, 32, false).unwrap();
    let fthread = {
        let shards = Arc::clone(&follower);
        let dir = fdir.clone();
        std::thread::spawn(move || run_follower(&shards, &dir, &addr))
    };

    // Drive the leader while the follower streams concurrently.
    let live = SimulationBuilder::anvil_like().jobs(120).seed(9).run();
    let script = trout_serve::replay_script(&live, 3);
    serve(&leader, &script);
    let watermarks = leader.journal_watermarks();
    assert!(watermarks.iter().sum::<u64>() > 0, "the leader journaled");

    wait_for("follower to reach the leader's watermarks", 30, || {
        follower.journal_watermarks() == watermarks
    });

    // Mid-stream the follower is read-only: lifecycle events are refused
    // with the typed class, predicts keep working.
    let refusal = serve(
        &follower,
        "{\"event\":\"start\",\"id\":999999,\"time\":1}\n",
    );
    assert!(refusal.contains("\"ok\":false"), "{refusal}");
    assert!(refusal.contains("read_only"), "{refusal}");
    assert!(follower.is_read_only());

    // Kill the leader abruptly: every follower stream drops mid-flight with
    // no goodbye — on the follower side this is `kill -9`.
    hub.stop();

    // Promote over the wire, as an operator would.
    let promoted = serve(&follower, "{\"event\":\"promote\"}\n");
    assert!(promoted.contains("\"was_follower\":true"), "{promoted}");
    fthread.join().unwrap().unwrap();
    assert!(!follower.is_read_only(), "promotion lifted the gate");

    // Bit-identity oracle: byte-equal canonical state at the same watermark
    // (the follower acked everything, so the watermarks are equal and the
    // divergence window is empty).
    assert_eq!(follower.journal_watermarks(), watermarks);
    assert_eq!(
        follower.merged_state_to_json().to_string(),
        leader.merged_state_to_json().to_string(),
        "follower state is byte-identical to the dead leader's at the watermark"
    );
    // The one documented exception: abs_err_sum is an order-sensitive f64
    // fold, compared through the drift MAE within a float tolerance.
    let (lj, lsum, lmae) = leader.merged_drift();
    let (fj, fsum, fmae) = follower.merged_drift();
    assert_eq!(lj, fj, "same joined drift pairs");
    assert!((lsum - fsum).abs() < 1e-6, "{lsum} vs {fsum}");
    assert!((lmae - fmae).abs() < 1e-9, "{lmae} vs {fmae}");

    // The promoted daemon accepts lifecycle events again (no read_only).
    let after = serve(
        &follower,
        "{\"event\":\"start\",\"id\":999999,\"time\":1}\n",
    );
    assert!(!after.contains("read_only"), "{after}");

    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn divergent_follower_history_is_refused() {
    let leader = Arc::new(shardset(1));
    let ldir = state_dir("diverge_leader");
    leader.open_state_dir(&ldir, 0, false).unwrap();
    let live = SimulationBuilder::anvil_like().jobs(60).seed(9).run();
    serve(&leader, &trout_serve::replay_script(&live, 0));

    // An imposter whose journal came from a different history: same
    // bootstrap, different event stream, shorter than the leader's.
    let imposter = Arc::new(shardset(1));
    let idir = state_dir("diverge_imposter");
    imposter.open_state_dir(&idir, 0, false).unwrap();
    let other = SimulationBuilder::anvil_like().jobs(20).seed(21).run();
    serve(&imposter, &trout_serve::replay_script(&other, 0));
    assert!(imposter.journal_watermarks()[0] > 0);
    assert!(imposter.journal_watermarks()[0] < leader.journal_watermarks()[0]);

    let hub = spawn_replication_listener(
        Arc::clone(&leader),
        ldir.clone(),
        TcpListener::bind("127.0.0.1:0").unwrap(),
    )
    .unwrap();
    let addr = hub.addr().to_string();

    let err = run_follower(&imposter, &idir, &addr).unwrap_err();
    assert!(err.to_string().contains("diverged"), "{err}");
    // The refusal left the would-be follower read-only — its history is not
    // the leader's, so serving writes OR reads from it would lie.
    assert!(imposter.is_read_only());

    hub.stop();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&idir);
}

#[test]
fn stale_follower_catches_up_from_snapshot_past_compaction() {
    // Leader with aggressive snapshot + compaction: by the end of the
    // script its journal holds only a tail behind the compaction base.
    let leader = Arc::new(shardset(1));
    let ldir = state_dir("compact_leader");
    leader.set_compaction(true);
    leader.open_state_dir(&ldir, 16, false).unwrap();
    let live = SimulationBuilder::anvil_like().jobs(100).seed(9).run();
    serve(&leader, &trout_serve::replay_script(&live, 4));
    let base = leader.lock(0).journal_base();
    assert!(base > 0, "compaction ran");
    let watermarks = leader.journal_watermarks();

    let hub = spawn_replication_listener(
        Arc::clone(&leader),
        ldir.clone(),
        TcpListener::bind("127.0.0.1:0").unwrap(),
    )
    .unwrap();
    let addr = hub.addr().to_string();

    // A fresh follower (watermark 0) is behind the truncation point: the
    // leader must ship its snapshot, then the remaining journal tail.
    let follower = Arc::new(shardset(1));
    let fdir = state_dir("compact_follower");
    follower.set_compaction(true);
    follower.open_state_dir(&fdir, 16, false).unwrap();
    let fthread = {
        let shards = Arc::clone(&follower);
        let dir = fdir.clone();
        std::thread::spawn(move || run_follower(&shards, &dir, &addr))
    };

    wait_for("stale follower to catch up via snapshot + tail", 30, || {
        follower.journal_watermarks() == watermarks
    });
    assert!(
        follower
            .lock(0)
            .metrics
            .replication_snapshots_installed
            .get()
            >= 1,
        "catch-up went through a snapshot install"
    );

    hub.stop();
    follower.request_promote();
    fthread.join().unwrap().unwrap();

    assert_eq!(follower.journal_watermarks(), watermarks);
    assert_eq!(
        follower.merged_state_to_json().to_string(),
        leader.merged_state_to_json().to_string(),
        "snapshot + tail catch-up converges byte-identically"
    );

    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn state_dump_is_the_replication_oracle_over_the_wire() {
    // The `{"event":"state"}` admin line exposes exactly the oracle the
    // tests above compare: watermarks + canonical merged state.
    let shards = shardset(1);
    let dir = state_dir("state_dump");
    shards.open_state_dir(&dir, 0, false).unwrap();
    let live = SimulationBuilder::anvil_like().jobs(30).seed(9).run();
    serve(&shards, &trout_serve::replay_script(&live, 5));

    let out = serve(&shards, "{\"event\":\"state\"}\n");
    let resp = Json::parse(out.lines().next().unwrap()).unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    match resp.get("watermarks") {
        Some(Json::Arr(w)) => {
            assert_eq!(w.len(), 1);
            assert_eq!(
                w[0],
                Json::Int(shards.journal_watermarks()[0] as i128),
                "dump reports the journal watermark"
            );
        }
        other => panic!("watermarks missing: {other:?}"),
    }
    assert_eq!(
        resp.get("state").unwrap().to_string(),
        shards.merged_state_to_json().to_string(),
        "the state member is the canonical merged state, byte for byte"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
