//! TCP fault-injection tests: misbehaving clients — disconnects mid-batch,
//! half-open sockets, malformed floods, abrupt session ends, slow-loris
//! readers — must not take the daemon down, must not starve other sessions,
//! and must show up in the per-class error metrics. Covers both transports:
//! the blocking thread-per-connection server and the nonblocking `poll(2)`
//! reactor (where all faulty connections share ONE reactor thread). Also
//! the regression guard for the session JoinHandle leak: a daemon serving
//! many sequential clients must reap finished session threads instead of
//! accumulating one handle per connection forever.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use trout_serve::{run_reactor, run_tcp, ReactorConfig, ServeConfig, ServeEngine, ShardSet};
use trout_std::json::Json;

fn engine() -> ServeEngine {
    ServeEngine::bootstrap(
        120,
        &ServeConfig {
            refit_every: 0,
            seed: 3,
            ..Default::default()
        },
    )
}

fn spawn_server(
    max_conns: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<()>,
    Arc<ShardSet>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shared = Arc::new(ShardSet::single(engine()));
    let server = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            run_tcp(shared, listener, 16, Some(max_conns)).unwrap();
        })
    };
    (addr, server, shared)
}

/// Reactor-transport twin of `spawn_server`: `n_shards` engines behind a
/// single-threaded reactor, so every fault shares one event loop.
fn spawn_reactor(
    n_shards: usize,
    max_conns: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<()>,
    Arc<ShardSet>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let cfg = ServeConfig {
        refit_every: 0,
        seed: 3,
        ..Default::default()
    };
    let shared = Arc::new(ShardSet::bootstrap(n_shards, 120, &cfg));
    let server = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            run_reactor(
                shared,
                listener,
                ReactorConfig {
                    threads: 1,
                    batch_max: 16,
                    max_conns: Some(max_conns),
                },
            )
            .unwrap();
        })
    };
    (addr, server, shared)
}

// Minimal setsockopt shim for fault shaping (same thin-FFI idiom as
// trout_std::evloop). Values are the Linux generic ones.
#[repr(C)]
struct Linger {
    l_onoff: i32,
    l_linger: i32,
}
extern "C" {
    fn setsockopt(
        fd: i32,
        level: i32,
        optname: i32,
        optval: *const std::ffi::c_void,
        optlen: u32,
    ) -> i32;
}
const SOL_SOCKET: i32 = 1;
const SO_RCVBUF: i32 = 8;
const SO_LINGER: i32 = 13;

/// Arms RST-on-close: dropping the stream aborts the connection instead of
/// FIN-closing it, so the peer deterministically observes a reset — a
/// loopback FIN lets the kernel absorb every unread response into socket
/// buffers and the server never sees an error at all.
fn arm_rst_on_close(conn: &TcpStream) {
    use std::os::unix::io::AsRawFd;
    let lg = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    let rc = unsafe {
        setsockopt(
            conn.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&lg as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_LINGER) failed");
}

/// Clamps the receive buffer so a non-reading client's TCP window stops
/// absorbing server output early.
fn clamp_rcvbuf(conn: &TcpStream, bytes: i32) {
    use std::os::unix::io::AsRawFd;
    let rc = unsafe {
        setsockopt(
            conn.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&bytes as *const i32).cast(),
            4,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF) failed");
}

/// Sums one error-class counter across every shard (predict errors are
/// recorded on the owning shard, not globally).
fn errors_by_class_summed(shards: &ShardSet) -> Vec<u64> {
    let n_classes = shards.lock(0).metrics.errors_by_class.len();
    (0..n_classes)
        .map(|k| {
            (0..shards.len())
                .map(|i| shards.lock(i).metrics.errors_by_class[k].get())
                .sum()
        })
        .collect()
}

/// Regression test for the JoinHandle leak: `run_tcp` used to push one
/// handle per accepted connection and never reap it until exit, so a
/// long-lived daemon's handle list grew without bound. With reaping on each
/// accept, N sequential (non-overlapping) sessions keep the live-handle
/// count — tracked by the `sessions_live` gauge updated after each reap —
/// bounded by a small constant instead of reaching N.
#[test]
fn sequential_sessions_keep_the_live_handle_count_bounded() {
    const SESSIONS: usize = 12;
    let (addr, server, shared) = spawn_server(SESSIONS);
    for _ in 0..SESSIONS {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"event\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(conn.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        drop(conn);
        // Give the session thread a beat to finish so the next accept's
        // reap actually observes it done.
        std::thread::sleep(std::time::Duration::from_millis(15));
    }
    server.join().unwrap();
    let m = &shared.lock(0).metrics;
    assert_eq!(m.sessions_total.get(), SESSIONS as u64);
    assert_eq!(m.sessions_live.get(), 0.0, "all sessions drained at exit");
    assert!(
        m.sessions_live_peak.get() <= 3.0,
        "live-handle peak {} for {SESSIONS} sequential sessions — handles are not being reaped",
        m.sessions_live_peak.get()
    );
}

#[test]
fn faulty_clients_are_isolated_and_counted() {
    let (addr, server, shared) = spawn_server(4);

    // Fault 1: a half-open socket — connects, sends nothing, just sits
    // there holding its session thread. Held open until the end to prove
    // it never blocks anyone else.
    let half_open = TcpStream::connect(addr).unwrap();

    // Fault 2: a malformed-line flood. Every line gets an error response;
    // the session survives to a clean shutdown.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut flood = String::new();
        for i in 0..40 {
            flood.push_str(&format!("not json at all #{i}\n"));
        }
        flood.push_str("{\"event\":\"shutdown\"}\n");
        conn.write_all(flood.as_bytes()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        for i in 0..41 {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0, "line {i}");
            let j = Json::parse(&line).unwrap();
            let expect_ok = i == 40; // only the shutdown ack succeeds
            assert_eq!(j.get("ok"), Some(&Json::Bool(expect_ok)), "{line}");
        }
    }

    // Fault 3: disconnect mid-batch — floods predicts for unknown jobs and
    // slams the connection shut without reading a single response. The
    // session thread hits a write error once the peer resets and must
    // record it instead of vanishing silently.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut burst = String::new();
        for id in 0..2_000u64 {
            burst.push_str(&format!(
                "{{\"event\":\"predict\",\"id\":{id},\"time\":0}}\n"
            ));
        }
        let _ = conn.write_all(burst.as_bytes());
        drop(conn); // abrupt end, responses unread
    }

    // A well-behaved client connects *after* all that and still gets
    // served: submit one job, predict it, shut down.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        let job = "{\"event\":\"submit\",\"job\":{\"id\":9001,\"user\":7,\"partition\":0,\
                   \"submit_time\":1000,\"req_cpus\":8,\"req_mem_gb\":16,\"req_nodes\":1,\
                   \"timelimit_min\":30}}\n";
        conn.write_all(job.as_bytes()).unwrap();
        conn.write_all(b"{\"event\":\"predict\",\"id\":9001,\"time\":1200}\n")
            .unwrap();
        conn.write_all(b"{\"event\":\"shutdown\"}\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut lines = Vec::new();
        let mut line = String::new();
        for _ in 0..3 {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0);
            lines.push(line.clone());
        }
        let pred = Json::parse(&lines[1]).unwrap();
        assert_eq!(
            pred.get("ok"),
            Some(&Json::Bool(true)),
            "the healthy session still gets predictions: {}",
            lines[1]
        );
        assert!(pred.get("quick_proba").is_some());
    }

    // Release the half-open socket so its session sees EOF and the server
    // can drain.
    drop(half_open);
    server.join().unwrap();

    let m = &shared.lock(0).metrics;
    let by: Vec<u64> = m.errors_by_class.iter().map(|c| c.get()).collect();
    // ERROR_CLASSES order: io, parse, config, model, protocol, poisoned.
    assert!(
        by[1] >= 40,
        "the malformed flood is counted as parse errors"
    );
    assert!(
        by[4] >= 1,
        "unknown-job predicts are counted as protocol errors"
    );
    assert!(
        by[0] >= 1,
        "the mid-batch disconnect surfaces as a recorded io error (got {by:?})"
    );
    assert_eq!(m.sessions_total.get(), 4);
    assert_eq!(m.sessions_live.get(), 0.0);
}

/// The reactor twin of `faulty_clients_are_isolated_and_counted`, with the
/// screws tightened: every connection shares ONE reactor thread, so a
/// half-open socket that stalls mid-line readiness, a malformed flood, and
/// an abrupt mid-batch disconnect are all multiplexed together — and none
/// of them may stall the healthy client. The half-open connection finishes
/// its partial line *after* everything else and must still be answered: a
/// stalled line is pending input, not an error.
#[test]
fn reactor_isolates_faults_sharing_one_poller_thread() {
    let (addr, server, shared) = spawn_reactor(2, 4);

    // Fault 1: half-open mid-readiness — the first half of a predict line,
    // no newline, then silence. The reactor read its bytes (readiness
    // fired) but has no complete line, so the connection just idles.
    let full_line = "{\"event\":\"predict\",\"id\":9001,\"time\":1200}\n";
    let (first_half, second_half) = full_line.split_at(20);
    let mut half_open = TcpStream::connect(addr).unwrap();
    half_open.write_all(first_half.as_bytes()).unwrap();
    half_open.flush().unwrap();

    // Fault 2: a malformed-line flood on a second connection. Every line
    // gets an error response while the half-open socket sits on the same
    // poller thread.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut flood = String::new();
        for i in 0..40 {
            flood.push_str(&format!("not json at all #{i}\n"));
        }
        flood.push_str("{\"event\":\"shutdown\"}\n");
        conn.write_all(flood.as_bytes()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        for i in 0..41 {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0, "line {i}");
            let j = Json::parse(&line).unwrap();
            let expect_ok = i == 40;
            assert_eq!(j.get("ok"), Some(&Json::Bool(expect_ok)), "{line}");
        }
    }

    // Fault 3: abrupt disconnect mid-batch — a burst of unknown-id
    // predicts, then the socket is slammed shut with every response
    // unread. SO_LINGER(0) turns the close into an RST so the reset is
    // observable regardless of how much the kernel buffered; the reactor
    // must surface it as a recorded io error, not a vanished connection.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        arm_rst_on_close(&conn);
        let mut burst = String::new();
        for id in 0..1_000u64 {
            burst.push_str(&format!(
                "{{\"event\":\"predict\",\"id\":{id},\"time\":0}}\n"
            ));
        }
        let _ = conn.write_all(burst.as_bytes());
        drop(conn);
    }

    // A healthy client submits the job the half-open predict will ask
    // about, predicts it (plus one unknown id, so a protocol error is
    // recorded even if the RST above flushed the burst before it was
    // processed), and shuts down cleanly.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        let job = "{\"event\":\"submit\",\"job\":{\"id\":9001,\"user\":7,\"partition\":0,\
                   \"submit_time\":1000,\"req_cpus\":8,\"req_mem_gb\":16,\"req_nodes\":1,\
                   \"timelimit_min\":30}}\n";
        conn.write_all(job.as_bytes()).unwrap();
        conn.write_all(b"{\"event\":\"predict\",\"id\":9001,\"time\":1200}\n")
            .unwrap();
        conn.write_all(b"{\"event\":\"predict\",\"id\":8888,\"time\":1200}\n")
            .unwrap();
        conn.write_all(b"{\"event\":\"shutdown\"}\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        for i in 0..4 {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0, "line {i}");
            if i == 1 {
                let pred = Json::parse(&line).unwrap();
                assert_eq!(pred.get("ok"), Some(&Json::Bool(true)), "{line}");
                assert!(pred.get("quick_proba").is_some());
            }
            if i == 2 {
                let pred = Json::parse(&line).unwrap();
                assert_eq!(pred.get("ok"), Some(&Json::Bool(false)), "{line}");
            }
        }
    }

    // The half-open connection wakes up and finishes its line — minutes of
    // stall later, the prediction still comes back, then a clean shutdown.
    half_open.write_all(second_half.as_bytes()).unwrap();
    half_open.write_all(b"{\"event\":\"shutdown\"}\n").unwrap();
    half_open.flush().unwrap();
    {
        let mut reader = BufReader::new(half_open.try_clone().unwrap());
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        let pred = Json::parse(&line).unwrap();
        assert_eq!(
            pred.get("ok"),
            Some(&Json::Bool(true)),
            "the completed half-open line is answered: {line}"
        );
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        assert!(line.contains("\"event\":\"shutdown\""), "{line}");
    }
    drop(half_open);
    server.join().unwrap();

    let by = errors_by_class_summed(&shared);
    // ERROR_CLASSES order: io, parse, config, model, protocol, poisoned.
    assert!(by[1] >= 40, "flood lines counted as parse errors ({by:?})");
    assert!(
        by[4] >= 1,
        "unknown-job predicts counted as protocol errors ({by:?})"
    );
    assert!(
        by[0] >= 1,
        "the mid-batch disconnect surfaces as a recorded io error ({by:?})"
    );
    let m = &shared.lock(0).metrics;
    assert_eq!(m.sessions_total.get(), 4);
    assert_eq!(m.sessions_live.get(), 0.0, "all connections drained");
}

/// Slow-loris writer: a client floods requests but refuses to read a single
/// response byte. Its write backlog crosses the reactor's high-water mark,
/// the backpressure counter fires, and its reads pause — while a healthy
/// client on the SAME poller thread round-trips unimpeded. When the loris
/// finally reads, every one of its responses arrives, in order.
#[test]
fn slow_loris_reader_is_backpressured_without_starving_others() {
    // The server's send buffer autotunes up to net.ipv4.tcp_wmem[2] (4 MB
    // on stock kernels), all of it invisible to the reactor's own backlog
    // accounting — so the response volume must comfortably exceed it for
    // the in-process backlog to provably cross the 256 KiB high-water
    // mark. 100k error responses ≈ 9 MB does.
    const BURST: usize = 100_000;
    let (addr, server, shared) = spawn_reactor(2, 2);

    let loris = TcpStream::connect(addr).unwrap();
    // Clamping SO_RCVBUF also locks out receive-side autotuning, keeping
    // the kernel's absorption on the client side small and fixed.
    clamp_rcvbuf(&loris, 64 * 1024);
    let writer = {
        let mut w = loris.try_clone().unwrap();
        std::thread::spawn(move || {
            // ~4.5 MB of requests producing ~9 MB of responses the client
            // will not read; write_all may stall once the reactor pauses
            // reads, which is exactly the point — it runs on its own
            // thread so the test can keep going.
            // Ids offset far past the dense sim-assigned range so every
            // predict is genuinely unknown.
            let mut burst = String::new();
            for i in 0..BURST as u64 {
                burst.push_str(&format!(
                    "{{\"event\":\"predict\",\"id\":{},\"time\":0}}\n",
                    1_000_000_000 + i
                ));
            }
            burst.push_str("{\"event\":\"shutdown\"}\n");
            w.write_all(burst.as_bytes()).unwrap();
            w.flush().unwrap();
        })
    };

    // While the loris stews, a healthy client on the same reactor thread
    // gets a full round trip.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        let job = "{\"event\":\"submit\",\"job\":{\"id\":7001,\"user\":2,\"partition\":0,\
                   \"submit_time\":500,\"req_cpus\":4,\"req_mem_gb\":8,\"req_nodes\":1,\
                   \"timelimit_min\":20}}\n";
        conn.write_all(job.as_bytes()).unwrap();
        conn.write_all(b"{\"event\":\"predict\",\"id\":7001,\"time\":600}\n")
            .unwrap();
        conn.write_all(b"{\"event\":\"shutdown\"}\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        for i in 0..3 {
            line.clear();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "healthy client starved at line {i}"
            );
            assert!(line.contains("\"ok\":true"), "{line}");
        }
    }

    // Now the loris deigns to read: all BURST responses + the shutdown ack
    // arrive, every line intact — backpressure paused it, lost nothing.
    {
        let mut reader = BufReader::new(loris.try_clone().unwrap());
        let mut line = String::new();
        for i in 0..=BURST {
            line.clear();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "response stream ended early at line {i}"
            );
            let is_shutdown_ack = i == BURST;
            assert_eq!(
                line.contains("\"event\":\"shutdown\""),
                is_shutdown_ack,
                "line {i}: {line}"
            );
        }
    }
    writer.join().unwrap();
    drop(loris);
    server.join().unwrap();

    let m = shared.metrics0();
    assert!(
        m.reactor_backpressure_total.get() >= 1,
        "the write backlog crossed the high-water mark at least once"
    );
    let by = errors_by_class_summed(&shared);
    assert!(
        by[4] >= BURST as u64,
        "every unknown-id predict was answered with a protocol error ({by:?})"
    );
    assert_eq!(m.sessions_live.get(), 0.0);
}
