//! TCP fault-injection tests: misbehaving clients — disconnects mid-batch,
//! half-open sockets, malformed floods, abrupt session ends — must not take
//! the daemon down, must not starve other sessions, and must show up in the
//! per-class error metrics. Also the regression guard for the session
//! JoinHandle leak: a daemon serving many sequential clients must reap
//! finished session threads instead of accumulating one handle per
//! connection forever.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

use trout_serve::{run_tcp, ServeConfig, ServeEngine};
use trout_std::json::Json;

fn engine() -> ServeEngine {
    ServeEngine::bootstrap(
        120,
        &ServeConfig {
            refit_every: 0,
            seed: 3,
            ..Default::default()
        },
    )
}

fn spawn_server(
    max_conns: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<()>,
    Arc<Mutex<ServeEngine>>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shared = Arc::new(Mutex::new(engine()));
    let server = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            run_tcp(shared, listener, 16, Some(max_conns)).unwrap();
        })
    };
    (addr, server, shared)
}

/// Regression test for the JoinHandle leak: `run_tcp` used to push one
/// handle per accepted connection and never reap it until exit, so a
/// long-lived daemon's handle list grew without bound. With reaping on each
/// accept, N sequential (non-overlapping) sessions keep the live-handle
/// count — tracked by the `sessions_live` gauge updated after each reap —
/// bounded by a small constant instead of reaching N.
#[test]
fn sequential_sessions_keep_the_live_handle_count_bounded() {
    const SESSIONS: usize = 12;
    let (addr, server, shared) = spawn_server(SESSIONS);
    for _ in 0..SESSIONS {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"event\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(conn.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        drop(conn);
        // Give the session thread a beat to finish so the next accept's
        // reap actually observes it done.
        std::thread::sleep(std::time::Duration::from_millis(15));
    }
    server.join().unwrap();
    let m = &shared.lock().unwrap().metrics;
    assert_eq!(m.sessions_total.get(), SESSIONS as u64);
    assert_eq!(m.sessions_live.get(), 0.0, "all sessions drained at exit");
    assert!(
        m.sessions_live_peak.get() <= 3.0,
        "live-handle peak {} for {SESSIONS} sequential sessions — handles are not being reaped",
        m.sessions_live_peak.get()
    );
}

#[test]
fn faulty_clients_are_isolated_and_counted() {
    let (addr, server, shared) = spawn_server(4);

    // Fault 1: a half-open socket — connects, sends nothing, just sits
    // there holding its session thread. Held open until the end to prove
    // it never blocks anyone else.
    let half_open = TcpStream::connect(addr).unwrap();

    // Fault 2: a malformed-line flood. Every line gets an error response;
    // the session survives to a clean shutdown.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut flood = String::new();
        for i in 0..40 {
            flood.push_str(&format!("not json at all #{i}\n"));
        }
        flood.push_str("{\"event\":\"shutdown\"}\n");
        conn.write_all(flood.as_bytes()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        for i in 0..41 {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0, "line {i}");
            let j = Json::parse(&line).unwrap();
            let expect_ok = i == 40; // only the shutdown ack succeeds
            assert_eq!(j.get("ok"), Some(&Json::Bool(expect_ok)), "{line}");
        }
    }

    // Fault 3: disconnect mid-batch — floods predicts for unknown jobs and
    // slams the connection shut without reading a single response. The
    // session thread hits a write error once the peer resets and must
    // record it instead of vanishing silently.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut burst = String::new();
        for id in 0..2_000u64 {
            burst.push_str(&format!(
                "{{\"event\":\"predict\",\"id\":{id},\"time\":0}}\n"
            ));
        }
        let _ = conn.write_all(burst.as_bytes());
        drop(conn); // abrupt end, responses unread
    }

    // A well-behaved client connects *after* all that and still gets
    // served: submit one job, predict it, shut down.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        let job = "{\"event\":\"submit\",\"job\":{\"id\":9001,\"user\":7,\"partition\":0,\
                   \"submit_time\":1000,\"req_cpus\":8,\"req_mem_gb\":16,\"req_nodes\":1,\
                   \"timelimit_min\":30}}\n";
        conn.write_all(job.as_bytes()).unwrap();
        conn.write_all(b"{\"event\":\"predict\",\"id\":9001,\"time\":1200}\n")
            .unwrap();
        conn.write_all(b"{\"event\":\"shutdown\"}\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut lines = Vec::new();
        let mut line = String::new();
        for _ in 0..3 {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0);
            lines.push(line.clone());
        }
        let pred = Json::parse(&lines[1]).unwrap();
        assert_eq!(
            pred.get("ok"),
            Some(&Json::Bool(true)),
            "the healthy session still gets predictions: {}",
            lines[1]
        );
        assert!(pred.get("quick_proba").is_some());
    }

    // Release the half-open socket so its session sees EOF and the server
    // can drain.
    drop(half_open);
    server.join().unwrap();

    let m = &shared.lock().unwrap().metrics;
    let by: Vec<u64> = m.errors_by_class.iter().map(|c| c.get()).collect();
    // ERROR_CLASSES order: io, parse, config, model, protocol, poisoned.
    assert!(
        by[1] >= 40,
        "the malformed flood is counted as parse errors"
    );
    assert!(
        by[4] >= 1,
        "unknown-job predicts are counted as protocol errors"
    );
    assert!(
        by[0] >= 1,
        "the mid-batch disconnect surfaces as a recorded io error (got {by:?})"
    );
    assert_eq!(m.sessions_total.get(), 4);
    assert_eq!(m.sessions_live.get(), 0.0);
}
