//! End-to-end tracing pipeline proof (DESIGN §14).
//!
//! Drives the same [`RouterSession`] the transports use and asserts the PR's
//! acceptance contract: a traced v2 predict's response echoes its trace id,
//! the `{"event":"trace"}` flight-recorder dump returns those traces with a
//! per-stage breakdown, and the stage tiling is tight — the stage sum lands
//! within 10% of the recorded end-to-end latency (it is equal by
//! construction up to clock-granularity saturation, so the bound is generous
//! on purpose).
//!
//! These tests run on the real monotonic clock: the Featurize stage is
//! measured with `Instant` inside the engine, so only a clock advancing in
//! real time makes the stage budget tile into the stamped span.

use trout_serve::protocol::submit_line;
use trout_serve::{RouterSession, ServeConfig, ShardSet};
use trout_slurmsim::{JobRecord, SimulationBuilder};
use trout_std::json::Json;

fn live_set(n_shards: usize) -> (ShardSet, Vec<JobRecord>) {
    let cfg = ServeConfig {
        refit_every: 0,
        seed: 5,
        ..Default::default()
    };
    let set = ShardSet::bootstrap(n_shards, 150, &cfg);
    let live = SimulationBuilder::anvil_like().jobs(30).seed(6).run();
    let mut session = RouterSession::new(set.len(), 64);
    let mut sink = Vec::new();
    for rec in &live.records {
        session
            .handle_line(&set, &submit_line(rec), &mut sink)
            .unwrap();
    }
    (set, live.records)
}

fn traced_predict(id: u64, time: i64) -> String {
    format!("{{\"v\":2,\"event\":\"predict\",\"id\":{id},\"time\":{time},\"trace\":true}}")
}

fn response_lines(out: &[u8]) -> Vec<Json> {
    String::from_utf8(out.to_vec())
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad response {l:?}: {e}")))
        .collect()
}

fn str_of(j: &Json, key: &str) -> String {
    match j.get(key) {
        Some(Json::Str(s)) => s.clone(),
        other => panic!("expected string `{key}`, got {other:?}"),
    }
}

fn int_of(j: &Json, key: &str) -> i128 {
    match j.get(key) {
        Some(Json::Int(v)) => *v,
        other => panic!("expected int `{key}`, got {other:?}"),
    }
}

#[test]
fn traced_responses_echo_ids_and_stage_sums_tile_the_latency() {
    const N_TRACED: usize = 4;
    let (set, recs) = live_set(2);
    // batch_max = N_TRACED: the last traced predict triggers the flush.
    let mut session = RouterSession::new(set.len(), N_TRACED);
    let mut out = Vec::new();
    for rec in recs.iter().take(N_TRACED) {
        session
            .handle_line(&set, &traced_predict(rec.id, rec.submit_time), &mut out)
            .unwrap();
    }
    let responses = response_lines(&out);
    assert_eq!(responses.len(), N_TRACED, "flush answered the full window");

    // Every traced response carries a distinct 16-hex-digit trace id.
    let mut echoed: Vec<String> = Vec::new();
    for r in &responses {
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let tid = str_of(r, "trace_id");
        assert_eq!(tid.len(), 16, "fixed-width hex id: {tid}");
        assert!(tid.bytes().all(|b| b.is_ascii_hexdigit()), "{tid}");
        assert!(!echoed.contains(&tid), "duplicate trace id {tid}");
        echoed.push(tid);
    }

    // The flight recorder returns those traces, newest first, with a
    // per-stage breakdown whose sum is within 10% of the total.
    out.clear();
    session
        .handle_line(&set, "{\"event\":\"trace\",\"last\":16}", &mut out)
        .unwrap();
    let dump = &response_lines(&out)[0];
    assert_eq!(dump.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(dump.get("event"), Some(&Json::Str("trace".into())));
    assert_eq!(int_of(dump, "count"), N_TRACED as i128);
    let traces = match dump.get("traces") {
        Some(Json::Arr(v)) => v,
        other => panic!("bad traces member {other:?}"),
    };
    assert_eq!(traces.len(), N_TRACED);
    for t in traces {
        let tid = str_of(t, "trace_id");
        assert!(echoed.contains(&tid), "dumped {tid} was never echoed");
        let total = int_of(t, "total_us");
        let stages = t.get("stages").expect("stages object");
        let sum: i128 = [
            "parse_us",
            "hold_us",
            "admission_us",
            "featurize_us",
            "inference_us",
            "backlog_us",
            "serialize_us",
        ]
        .iter()
        .map(|s| int_of(stages, s))
        .sum();
        // Exact by construction modulo µs-granularity saturation between
        // the Instant-based featurize split and the session clock stamps.
        let slack = (total / 10).max(2);
        assert!(
            (sum - total).abs() <= slack,
            "stage sum {sum} vs total {total} for {tid}: {t}"
        );
    }
}

#[test]
fn untraced_predicts_stay_invisible_to_the_flight_recorder() {
    let (set, recs) = live_set(1);
    let mut session = RouterSession::new(set.len(), 1);
    let mut out = Vec::new();
    // v1 and untraced v2 predicts: no trace ids, nothing recorded.
    let rec = &recs[0];
    session
        .handle_line(
            &set,
            &format!(
                "{{\"event\":\"predict\",\"id\":{},\"time\":{}}}",
                rec.id, rec.submit_time
            ),
            &mut out,
        )
        .unwrap();
    let rec2 = &recs[1];
    session
        .handle_line(
            &set,
            &format!(
                "{{\"v\":2,\"event\":\"predict\",\"id\":{},\"time\":{}}}",
                rec2.id, rec2.submit_time
            ),
            &mut out,
        )
        .unwrap();
    for r in &response_lines(&out) {
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert!(r.get("trace_id").is_none(), "untraced predicts echo no id");
    }
    out.clear();
    session
        .handle_line(&set, "{\"event\":\"trace\"}", &mut out)
        .unwrap();
    let dump = &response_lines(&out)[0];
    assert_eq!(int_of(dump, "count"), 0, "flight recorder stays empty");

    // Tracing without the v2 envelope is a protocol error, so the ci v1
    // byte-compat smoke can never see trace members.
    out.clear();
    session
        .handle_line(
            &set,
            &format!(
                "{{\"event\":\"predict\",\"id\":{},\"time\":{},\"trace\":true}}",
                rec.id, rec.submit_time
            ),
            &mut out,
        )
        .unwrap();
    let err = &response_lines(&out)[0];
    assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
    assert!(str_of(err, "error").contains("v2"));
}

#[test]
fn trace_ids_are_deterministic_per_session() {
    // Two identical sessions against identical sets mint identical ids —
    // the stream comes from the session's hermetic rng, never from time.
    let mut ids = Vec::new();
    for _ in 0..2 {
        let (set, recs) = live_set(1);
        let mut session = RouterSession::new(set.len(), 1);
        let mut out = Vec::new();
        let rec = &recs[0];
        session
            .handle_line(&set, &traced_predict(rec.id, rec.submit_time), &mut out)
            .unwrap();
        ids.push(str_of(&response_lines(&out)[0], "trace_id"));
    }
    assert_eq!(ids[0], ids[1], "hermetic id stream");
}
