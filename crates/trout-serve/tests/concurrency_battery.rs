//! The deterministic concurrency battery for the sharded reactor.
//!
//! Three invariants, each with its own test:
//!
//! 1. **Pairing** — a seeded in-process load generator drives hundreds of
//!    simulated connections through the reactor at once; every connection
//!    must get exactly one response per request, in request order, with
//!    the right job id on every successful predict. Concurrency may
//!    interleave *engine state* arbitrarily; it must never interleave one
//!    connection's response stream.
//! 2. **Shard equivalence** — the same replay through 4 shards and through
//!    1 shard must leave byte-identical canonical merged state (lifecycle
//!    events broadcast, so every shard holds a full replica; the canonical
//!    merge is order-normalized and omits the one order-sensitive f64
//!    accumulator, which is instead held to a tolerance via
//!    `merged_drift`). When `TROUT_BATTERY_STATE_OUT` names a file, the
//!    merged state is written there so ci.sh can diff runs under
//!    `TROUT_THREADS=1` vs `=4` across processes.
//! 3. **Crash recovery under sharding** — SIGKILL is simulated by dropping
//!    a 2-shard set mid-script with no clean shutdown; a fresh set
//!    recovering from the per-shard journals must serve the remainder of
//!    the script byte-identically to an uninterrupted reference run and
//!    end in byte-identical per-shard state, refits included.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use trout_serve::{run_reactor, run_session, ReactorConfig, ServeConfig, ShardSet};
use trout_slurmsim::SimulationBuilder;
use trout_std::json::Json;
use trout_std::rng::SplitMix64;

fn cfg(refit_every: usize) -> ServeConfig {
    ServeConfig {
        refit_every,
        seed: 3,
        ..Default::default()
    }
}

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("trout_battery_tests")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Splits a script at `frac` of its lines, never splitting the trailing
/// metrics+shutdown pair into the first part.
fn split_script(script: &str, frac: f64) -> (String, String) {
    let lines: Vec<&str> = script.lines().collect();
    let cut = ((lines.len() as f64 * frac) as usize).min(lines.len() - 2);
    let mut first = lines[..cut].join("\n");
    let mut rest = lines[cut..].join("\n");
    first.push('\n');
    rest.push('\n');
    (first, rest)
}

fn serve(shards: &ShardSet, script: &str) -> String {
    let mut out = Vec::new();
    run_session(
        shards,
        std::io::Cursor::new(script.to_string()),
        &mut out,
        32,
    )
    .unwrap();
    String::from_utf8(out).unwrap()
}

/// One expected response: the event kind echoed back, whether it succeeds,
/// and (for successful predicts and acks) the job id it must carry.
struct Expect {
    event: &'static str,
    ok: bool,
    id: Option<u64>,
}

/// A seeded client workload: 3 submits of its own jobs, 12 predicts mixing
/// its own pending jobs with ids nobody ever submitted, one lifecycle
/// `start`, and a clean shutdown. Returns the script and the expected
/// response sequence.
fn client_script(conn_id: u64) -> (String, Vec<Expect>) {
    let mut rng = SplitMix64::new(0xBA77E47 ^ (conn_id.wrapping_mul(0x9E3779B97F4A7C15)));
    let base = 1_000_000 + conn_id * 100;
    let t0: i64 = 5_000_000;
    let mut script = String::new();
    let mut expect = Vec::new();
    for k in 0..3u64 {
        script.push_str(&format!(
            "{{\"event\":\"submit\",\"job\":{{\"id\":{},\"user\":{},\"partition\":0,\
             \"submit_time\":{t0},\"req_cpus\":{},\"req_mem_gb\":8,\"req_nodes\":1,\
             \"timelimit_min\":{}}}}}\n",
            base + k,
            conn_id % 23,
            1u64 << (rng.next_below(4)),
            10 + rng.next_below(6) * 30,
        ));
        expect.push(Expect {
            event: "submit",
            ok: true,
            id: Some(base + k),
        });
    }
    for q in 0..12u64 {
        if rng.next_below(4) == 3 {
            // An id no connection ever submits: an in-order error response.
            let ghost = 77_000_000 + conn_id * 100 + q;
            script.push_str(&format!(
                "{{\"event\":\"predict\",\"id\":{ghost},\"time\":{}}}\n",
                t0 + 60
            ));
            expect.push(Expect {
                event: "predict",
                ok: false,
                id: None,
            });
        } else {
            let id = base + rng.next_below(3);
            script.push_str(&format!(
                "{{\"event\":\"predict\",\"id\":{id},\"time\":{}}}\n",
                t0 + 60
            ));
            expect.push(Expect {
                event: "predict",
                ok: true,
                id: Some(id),
            });
        }
    }
    script.push_str(&format!(
        "{{\"event\":\"start\",\"id\":{base},\"time\":{}}}\n",
        t0 + 120
    ));
    expect.push(Expect {
        event: "start",
        ok: true,
        id: Some(base),
    });
    script.push_str("{\"event\":\"shutdown\"}\n");
    expect.push(Expect {
        event: "shutdown",
        ok: true,
        id: None,
    });
    (script, expect)
}

/// Battery invariant 1: hundreds of concurrent connections through the
/// reactor, every one strictly 1:1 paired in request order.
#[test]
fn load_generator_pairs_every_connection_one_to_one() {
    const CONNS: usize = 200;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shards = Arc::new(ShardSet::bootstrap(4, 150, &cfg(0)));
    let server = {
        let shards = Arc::clone(&shards);
        std::thread::spawn(move || {
            run_reactor(
                shards,
                listener,
                ReactorConfig {
                    threads: 4,
                    batch_max: 8,
                    max_conns: Some(CONNS),
                },
            )
            .unwrap();
        })
    };

    std::thread::scope(|s| {
        for c in 0..CONNS as u64 {
            s.spawn(move || {
                let (script, expect) = client_script(c);
                let mut conn = TcpStream::connect(addr).unwrap();
                conn.write_all(script.as_bytes()).unwrap();
                conn.flush().unwrap();
                let mut reader = BufReader::new(conn);
                let mut line = String::new();
                for (i, want) in expect.iter().enumerate() {
                    line.clear();
                    assert!(
                        reader.read_line(&mut line).unwrap() > 0,
                        "conn {c}: response stream ended at line {i}"
                    );
                    let j = Json::parse(line.trim())
                        .unwrap_or_else(|e| panic!("conn {c} line {i}: {e}: {line}"));
                    assert_eq!(
                        j.get("ok"),
                        Some(&Json::Bool(want.ok)),
                        "conn {c} line {i}: {line}"
                    );
                    if want.ok {
                        assert_eq!(
                            j.get("event"),
                            Some(&Json::Str(want.event.into())),
                            "conn {c} line {i}: {line}"
                        );
                    }
                    if let Some(id) = want.id {
                        assert_eq!(
                            j.get("id"),
                            Some(&Json::Int(id as i128)),
                            "conn {c} line {i} answered for the wrong job: {line}"
                        );
                    }
                }
                // Nothing after the shutdown ack.
                line.clear();
                assert_eq!(
                    reader.read_line(&mut line).unwrap(),
                    0,
                    "conn {c}: trailing bytes after shutdown: {line}"
                );
            });
        }
    });
    server.join().unwrap();

    let m = shards.metrics0();
    assert_eq!(m.sessions_total.get(), CONNS as u64);
    assert_eq!(m.sessions_live.get(), 0.0, "every connection drained");
    // Every shard saw every broadcast: replicas agree on the index.
    let idx0 = shards.lock(0).index().state_to_json().to_string();
    for i in 1..shards.len() {
        assert_eq!(
            shards.lock(i).index().state_to_json().to_string(),
            idx0,
            "shard {i} replica diverged under concurrency"
        );
    }
}

/// Battery invariant 2: merged 4-shard state is byte-identical to the
/// 1-shard reference after the same serial replay, and the one
/// order-sensitive accumulator agrees to tolerance.
#[test]
fn merged_four_shard_state_equals_single_shard_reference() {
    let live = SimulationBuilder::anvil_like().jobs(200).seed(11).run();
    let script = trout_serve::replay_script(&live, 3);

    let mut merged = Vec::new();
    let mut drift = Vec::new();
    for n in [1usize, 4] {
        let shards = ShardSet::bootstrap(n, 300, &cfg(0));
        serve(&shards, &script);
        // Replicas first: every shard holds the full index.
        let idx0 = shards.lock(0).index().state_to_json().to_string();
        for i in 1..n {
            assert_eq!(
                shards.lock(i).index().state_to_json().to_string(),
                idx0,
                "shard {i} index replica diverged"
            );
        }
        merged.push(shards.merged_state_to_json().to_string());
        drift.push(shards.merged_drift());
    }
    assert_eq!(
        merged[0], merged[1],
        "merged 4-shard state is bit-identical to the 1-shard reference"
    );
    let ((j1, e1, m1), (j4, e4, m4)) = (drift[0], drift[1]);
    assert_eq!(j1, j4, "same joined outcome count");
    assert!(
        (e1 - e4).abs() <= 1e-9 * e1.abs().max(1.0),
        "abs error sums agree to tolerance: {e1} vs {e4}"
    );
    assert!(
        (m1 - m4).abs() <= 1e-9 * m1.abs().max(1.0),
        "rolling MAE agrees to tolerance: {m1} vs {m4}"
    );

    // Cross-process determinism hook: ci.sh runs this test under
    // TROUT_THREADS=1 and =4 and diffs the dumped state byte for byte.
    if let Ok(path) = std::env::var("TROUT_BATTERY_STATE_OUT") {
        std::fs::write(&path, format!("{}\n", merged[1])).unwrap();
    }
}

/// The serial replay is bit-identical for any worker-pool width: the same
/// battery replay under `TROUT_THREADS=1` and `=4` must produce the same
/// merged state in-process too (ci.sh additionally checks it across
/// processes).
#[test]
fn merged_state_is_bit_identical_across_trout_threads() {
    let live = SimulationBuilder::anvil_like().jobs(120).seed(29).run();
    let script = trout_serve::replay_script(&live, 4);
    let mut states = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("TROUT_THREADS", threads);
        let shards = ShardSet::bootstrap(2, 200, &cfg(0));
        serve(&shards, &script);
        states.push(shards.merged_state_to_json().to_string());
    }
    std::env::remove_var("TROUT_THREADS");
    assert_eq!(
        states[0], states[1],
        "TROUT_THREADS must not change served state bit for bit"
    );
}

/// Battery invariant 3: SIGKILL + `--recover` under sharding. A 2-shard
/// set journals per shard, dies mid-script with no sync, and a fresh set
/// recovers — remainder responses and final per-shard state must be
/// byte-identical to an uninterrupted run. Refits are enabled so recovery
/// has to reproduce hot-swapped model weights on every shard.
#[test]
fn sharded_sigkill_recovery_is_byte_identical() {
    const SHARDS: usize = 2;
    let live = SimulationBuilder::anvil_like().jobs(150).seed(9).run();
    let script = trout_serve::replay_script(&live, 3);
    let (first, rest) = split_script(&script, 0.5);

    // Reference: one uninterrupted 2-shard run.
    let reference = ShardSet::bootstrap(SHARDS, 300, &cfg(64));
    let ref_responses = serve(&reference, &script);
    let ref_states: Vec<String> = (0..SHARDS)
        .map(|i| reference.lock(i).state_to_json().to_string())
        .collect();

    // Crashing run: per-shard journals under shard-NNN/, first half only,
    // then the set is dropped with no shutdown and no sync.
    let dir = state_dir("sharded_sigkill");
    {
        let crashed = ShardSet::bootstrap(SHARDS, 300, &cfg(64));
        crashed.open_state_dir(&dir, 32, false).unwrap();
        serve(&crashed, &first);
        drop(crashed); // the SIGKILL
    }
    for i in 0..SHARDS {
        let journal = trout_serve::shard_dir(&dir, i).join(trout_serve::JOURNAL_FILE);
        assert!(journal.is_file(), "shard {i} journal exists at {journal:?}");
    }

    // Recovery: same arguments, fresh set, --recover.
    let recovered = ShardSet::bootstrap(SHARDS, 300, &cfg(64));
    let reports = recovered.open_state_dir(&dir, 32, true).unwrap();
    assert_eq!(reports.len(), SHARDS);
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(
            report.snapshot_journal_pos + report.replayed,
            report.journal_lines,
            "shard {i}: every journal line snapshotted or replayed"
        );
    }
    // Journals are NOT identical across shards: lifecycle events broadcast
    // everywhere, but served-prediction records (drift recovery) land only
    // on the owning shard — so line counts differ while each shard still
    // recovers its own exact state.

    // The remainder must replay byte-identically (metrics dumps excluded:
    // latency histograms legitimately differ across runs).
    let rec_responses = serve(&recovered, &rest);
    let ref_rest: Vec<&str> = ref_responses.lines().skip(first.lines().count()).collect();
    let rec_lines: Vec<&str> = rec_responses.lines().collect();
    assert_eq!(ref_rest.len(), rec_lines.len());
    for (a, b) in ref_rest.iter().zip(&rec_lines) {
        let ja = Json::parse(a).unwrap();
        if ja.get("event") == Some(&Json::Str("metrics".into())) {
            continue;
        }
        assert_eq!(a, b, "post-recovery responses match the reference");
    }

    // And the final per-shard state is the reference's, byte for byte.
    for (i, want) in ref_states.iter().enumerate() {
        assert_eq!(
            &recovered.lock(i).state_to_json().to_string(),
            want,
            "shard {i} recovered state is bit-identical"
        );
    }

    // A fresh set with the wrong shard count must refuse the state dir.
    let wrong = ShardSet::bootstrap(4, 300, &cfg(64));
    let err = wrong.open_state_dir(&dir, 32, true).unwrap_err();
    assert!(
        err.to_string().contains("shard"),
        "mismatched shard count is refused: {err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
