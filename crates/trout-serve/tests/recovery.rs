//! Crash-recovery end-to-end tests: a served run is SIGKILL-simulated by
//! dropping the engine mid-script with no clean shutdown, then a fresh
//! process image (a newly bootstrapped engine) recovers from the state dir
//! and must be **bit-identical** to an engine that served the whole script
//! uninterrupted — same wire responses for the remainder of the script,
//! same serialized state down to the byte.

use std::path::PathBuf;

use trout_serve::{run_session, ServeConfig, ServeEngine, ShardSet};
use trout_slurmsim::SimulationBuilder;
use trout_std::json::Json;

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("trout_recovery_tests")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Fresh engine with the bootstrap arguments every test run shares —
/// construction is deterministic, which is what makes snapshot-free
/// recovery possible at all. Refits enabled so recovery has to reproduce
/// hot-swapped model weights, not just index state.
fn engine() -> ServeEngine {
    ServeEngine::bootstrap(
        400,
        &ServeConfig {
            refit_every: 64,
            seed: 3,
            ..Default::default()
        },
    )
}

/// Splits a script at `frac` of its lines (never splitting the trailing
/// metrics+shutdown pair into the first part).
fn split_script(script: &str, frac: f64) -> (String, String) {
    let lines: Vec<&str> = script.lines().collect();
    let cut = ((lines.len() as f64 * frac) as usize).min(lines.len() - 2);
    let mut first = lines[..cut].join("\n");
    let mut rest = lines[cut..].join("\n");
    first.push('\n');
    rest.push('\n');
    (first, rest)
}

/// Feeds `script` through a session and returns the response transcript.
fn serve(shards: &ShardSet, script: &str) -> String {
    let mut out = Vec::new();
    run_session(
        shards,
        std::io::Cursor::new(script.to_string()),
        &mut out,
        32,
    )
    .unwrap();
    String::from_utf8(out).unwrap()
}

/// Asserts two transcripts match line for line, comparing metrics-dump
/// lines only on their deterministic content (the drift section and the
/// event counters — latency histograms legitimately differ across runs).
fn assert_transcripts_match(a: &str, b: &str) {
    let (a, b): (Vec<&str>, Vec<&str>) = (a.lines().collect(), b.lines().collect());
    assert_eq!(a.len(), b.len(), "transcripts have the same length");
    for (la, lb) in a.iter().zip(&b) {
        let ja = Json::parse(la).unwrap();
        if ja.get("event") == Some(&Json::Str("metrics".into())) {
            let jb = Json::parse(lb).unwrap();
            let (ma, mb) = (ja.get("metrics").unwrap(), jb.get("metrics").unwrap());
            assert_eq!(ma.get("drift"), mb.get("drift"), "drift sections match");
            for c in ["predicts", "state_events", "refits"] {
                assert_eq!(
                    ma.get("counters").and_then(|x| x.get(c)),
                    mb.get("counters").and_then(|x| x.get(c)),
                    "counter {c} matches"
                );
            }
        } else {
            assert_eq!(la, lb, "response lines match");
        }
    }
}

#[test]
fn recovery_is_bit_identical_to_an_uninterrupted_run() {
    let live = SimulationBuilder::anvil_like().jobs(150).seed(9).run();
    let script = trout_serve::replay_script(&live, 3);
    let (first, rest) = split_script(&script, 0.5);

    // Reference: one engine, no state dir, the whole script in one life.
    let reference = ShardSet::single(engine());
    let ref_responses = serve(&reference, &script);
    let ref_state = reference.lock(0).state_to_json().to_string();

    // Crashing run: journal every event (fsync policy 1, snapshot every 32
    // events), serve the first half, then "SIGKILL" — drop the engine with
    // no shutdown line and no clean-exit sync.
    let dir = state_dir("bit_identity");
    {
        let mut e = engine();
        e.open_state_dir(&dir, 32, false).unwrap();
        let crashed = ShardSet::single(e);
        serve(&crashed, &first);
        drop(crashed); // no shutdown, no sync — the crash
    }

    // Recovery: a fresh process image bootstraps the same engine and
    // resumes from the state dir.
    let mut e = engine();
    let report = e.open_state_dir(&dir, 32, true).unwrap();
    assert!(report.snapshot_loaded, "a snapshot was due and loaded");
    assert!(
        report.replayed < report.journal_lines,
        "the snapshot watermark bounded replay ({} of {} lines)",
        report.replayed,
        report.journal_lines
    );
    assert_eq!(
        report.snapshot_journal_pos + report.replayed,
        report.journal_lines,
        "every journal line is either snapshotted or replayed"
    );
    assert_eq!(
        e.metrics.recovery_replayed_events.get(),
        report.replayed,
        "replay metric matches the report"
    );

    // The remainder of the script must produce byte-identical responses...
    let recovered = ShardSet::single(e);
    let rec_responses = serve(&recovered, &rest);
    let ref_rest: String = ref_responses
        .lines()
        .skip(first.lines().count())
        .flat_map(|l| [l, "\n"])
        .collect();
    assert_transcripts_match(&ref_rest, &rec_responses);

    // ...and the final engine state must serialize byte-identically.
    let rec_state = recovered.lock(0).state_to_json().to_string();
    assert_eq!(
        rec_state, ref_state,
        "recovered state is bit-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_and_journal_only_recovery_agree() {
    let live = SimulationBuilder::anvil_like().jobs(100).seed(17).run();
    let script = trout_serve::replay_script(&live, 4);
    let (first, _) = split_script(&script, 0.7);

    // Two crashing runs over the same events: one snapshotting, one
    // journal-only (snapshot_every = 0).
    let dir_snap = state_dir("agree_snap");
    let dir_journal = state_dir("agree_journal");
    for (dir, every) in [(&dir_snap, 16u64), (&dir_journal, 0u64)] {
        let mut e = engine();
        e.open_state_dir(dir, every, false).unwrap();
        let m = ShardSet::single(e);
        serve(&m, &first);
    }

    let mut from_snap = engine();
    let r1 = from_snap.open_state_dir(&dir_snap, 16, true).unwrap();
    let mut from_journal = engine();
    let r2 = from_journal.open_state_dir(&dir_journal, 0, true).unwrap();

    assert!(r1.snapshot_loaded && !r2.snapshot_loaded);
    assert_eq!(r1.journal_lines, r2.journal_lines, "same events journaled");
    assert_eq!(r2.replayed, r2.journal_lines, "journal-only replays all");
    assert_eq!(
        from_snap.state_to_json().to_string(),
        from_journal.state_to_json().to_string(),
        "snapshot+tail and full-journal recovery reach the same state"
    );

    let _ = std::fs::remove_dir_all(&dir_snap);
    let _ = std::fs::remove_dir_all(&dir_journal);
}

#[test]
fn torn_journal_tail_is_dropped_and_recovery_proceeds() {
    let live = SimulationBuilder::anvil_like().jobs(60).seed(5).run();
    let script = trout_serve::replay_script(&live, 5);
    let (first, _) = split_script(&script, 0.5);

    let dir = state_dir("torn");
    {
        let mut e = engine();
        e.open_state_dir(&dir, 0, false).unwrap();
        let m = ShardSet::single(e);
        serve(&m, &first);
    }
    // Crash mid-append: a torn, newline-less half record at the tail.
    use std::io::Write;
    let journal = dir.join(trout_serve::JOURNAL_FILE);
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .unwrap();
    f.write_all(b"{\"event\":\"start\",\"id\":99").unwrap();
    drop(f);

    let mut e = engine();
    let report = e.open_state_dir(&dir, 0, true).unwrap();
    assert!(report.torn_bytes > 0, "the torn record was detected");
    assert_eq!(report.replayed, report.journal_lines);
    // The journal was truncated back to a record boundary: appending works
    // and a second recovery sees no torn bytes.
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_only_line_recovers_to_the_snapshot_watermark() {
    // The regression this pins down: when the torn record is the journal's
    // *only* line, truncation leaves an empty journal behind a snapshot with
    // a higher watermark. That used to look like "snapshot and journal are
    // from different runs"; it must instead recover to the snapshot
    // watermark (the torn record was never acknowledged).
    let live = SimulationBuilder::anvil_like().jobs(80).seed(7).run();
    let script = trout_serve::replay_script(&live, 4);
    let (first, _) = split_script(&script, 0.6);

    let dir = state_dir("torn_only");
    {
        let mut e = engine();
        e.open_state_dir(&dir, 16, false).unwrap();
        serve(&ShardSet::single(e), &first);
    }
    let snap = Json::parse(&std::fs::read_to_string(dir.join(trout_serve::SNAPSHOT_FILE)).unwrap())
        .unwrap();
    let snap_pos = match snap.get("journal_pos") {
        Some(Json::Int(v)) => *v as u64,
        other => panic!("journal_pos: {other:?}"),
    };
    assert!(snap_pos > 0, "a snapshot was written");
    // Replace the journal with a single torn (newline-less) record — a crash
    // during the first append after compaction truncated everything else.
    std::fs::write(
        dir.join(trout_serve::JOURNAL_FILE),
        "{\"event\":\"start\",\"id\":9",
    )
    .unwrap();

    let mut e = engine();
    let report = e.open_state_dir(&dir, 16, true).unwrap();
    assert!(report.snapshot_loaded);
    assert!(report.torn_bytes > 0, "the torn-only line was detected");
    assert_eq!(report.replayed, 0, "nothing survived to replay");
    assert_eq!(
        e.journal_position(),
        snap_pos,
        "the journal base was repaired to the snapshot watermark"
    );
    assert_eq!(
        e.state_to_json().to_string(),
        snap.get("state").unwrap().to_string(),
        "recovered exactly to the snapshot state"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_bounds_the_journal_and_recovery_stays_bit_identical() {
    let live = SimulationBuilder::anvil_like().jobs(120).seed(13).run();
    let script = trout_serve::replay_script(&live, 3);
    let (first, rest) = split_script(&script, 0.5);

    // Reference: uninterrupted, no durability.
    let reference = ShardSet::single(engine());
    let ref_responses = serve(&reference, &script);
    let ref_state = reference.lock(0).state_to_json().to_string();

    let dir = state_dir("compact");
    let snapshot_every = 24u64;
    {
        let mut e = engine();
        e.set_compaction(true);
        e.open_state_dir(&dir, snapshot_every, false).unwrap();
        serve(&ShardSet::single(e), &first);
    }
    // The journal is bounded: a base control line plus at most one snapshot
    // interval of entries.
    let text = std::fs::read_to_string(dir.join(trout_serve::JOURNAL_FILE)).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].contains("journal_base"),
        "compaction left a base line: {}",
        lines[0]
    );
    assert!(
        (lines.len() as u64) <= snapshot_every + 1,
        "journal holds at most one snapshot interval, got {} lines",
        lines.len()
    );

    let mut e = engine();
    e.set_compaction(true);
    let report = e.open_state_dir(&dir, snapshot_every, true).unwrap();
    assert!(report.journal_base > 0, "recovery saw the compaction base");
    assert_eq!(
        report.snapshot_journal_pos + report.replayed,
        report.journal_lines,
        "absolute positions: snapshotted + replayed covers every event"
    );

    let recovered = ShardSet::single(e);
    let rec_responses = serve(&recovered, &rest);
    let ref_rest: String = ref_responses
        .lines()
        .skip(first.lines().count())
        .flat_map(|l| [l, "\n"])
        .collect();
    assert_transcripts_match(&ref_rest, &rec_responses);
    assert_eq!(
        recovered.lock(0).state_to_json().to_string(),
        ref_state,
        "compacted recovery is bit-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn nonempty_state_dir_is_refused_without_recover() {
    let dir = state_dir("refuse");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(trout_serve::JOURNAL_FILE), "").unwrap();
    let mut e = engine();
    let err = e.open_state_dir(&dir, 0, false).unwrap_err();
    assert!(
        err.to_string().contains("--recover"),
        "the refusal explains the fix: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
