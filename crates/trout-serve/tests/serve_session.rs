//! End-to-end session tests: a generated event script through the full
//! parse → engine → respond loop, over an in-memory pipe and over TCP.

use std::io::Cursor;
use std::sync::Arc;

use trout_features::incremental::{trace_events, ReplayEvent};
use trout_serve::protocol::job_to_json;
use trout_serve::{run_session, run_tcp, ServeConfig, ServeEngine, ShardSet};
use trout_slurmsim::{SimulationBuilder, Trace};
use trout_std::json::Json;

/// Flattens a trace into the ndjson script a live client would send: after
/// every `predict_every`-th submit it asks about the most recent pending
/// jobs (several back-to-back predicts — the coalescing case), ending in
/// metrics+shutdown.
fn event_script(trace: &Trace, predict_every: usize) -> String {
    let mut out = String::new();
    let mut submits = 0usize;
    let mut pending: Vec<u64> = Vec::new();
    for (t, ev) in trace_events(trace) {
        match ev {
            ReplayEvent::Submit(i) => {
                let r = &trace.records[i];
                let line = Json::Obj(vec![
                    ("event".into(), Json::Str("submit".into())),
                    ("job".into(), job_to_json(r)),
                ]);
                out.push_str(&line.to_string());
                out.push('\n');
                pending.push(r.id);
                submits += 1;
                if predict_every > 0 && submits % predict_every == 0 {
                    for id in pending.iter().rev().take(4) {
                        out.push_str(&format!(
                            "{{\"event\":\"predict\",\"id\":{id},\"time\":{}}}\n",
                            r.submit_time
                        ));
                    }
                }
            }
            ReplayEvent::Start(i) => {
                pending.retain(|&id| id != trace.records[i].id);
                out.push_str(&format!(
                    "{{\"event\":\"start\",\"id\":{},\"time\":{t}}}\n",
                    trace.records[i].id
                ));
            }
            ReplayEvent::End(i) => {
                pending.retain(|&id| id != trace.records[i].id);
                out.push_str(&format!(
                    "{{\"event\":\"end\",\"id\":{},\"time\":{t}}}\n",
                    trace.records[i].id
                ));
            }
        }
    }
    out.push_str("{\"event\":\"metrics\"}\n");
    out.push_str("{\"event\":\"shutdown\"}\n");
    out
}

fn engine() -> ServeEngine {
    ServeEngine::bootstrap(
        400,
        &ServeConfig {
            refit_every: 0,
            seed: 3,
            ..Default::default()
        },
    )
}

fn assert_session_transcript(script: &str, responses: &str) {
    let requests = script.lines().count();
    let lines: Vec<&str> = responses.lines().collect();
    assert_eq!(lines.len(), requests, "one response line per request line");
    let mut predictions = 0usize;
    for line in &lines {
        let j = Json::parse(line).unwrap_or_else(|e| panic!("bad response {line}: {e}"));
        assert_eq!(j.get("ok"), Some(&Json::Bool(true)), "{line}");
        if j.get("event") == Some(&Json::Str("predict".into())) {
            predictions += 1;
            let proba = match j.get("quick_proba") {
                Some(Json::Num(p)) => *p,
                other => panic!("quick_proba missing: {other:?}"),
            };
            assert!((0.0..=1.0).contains(&proba), "{line}");
            assert!(j.get("message").is_some());
        }
    }
    assert!(
        predictions >= 10,
        "only {predictions} predictions came back"
    );

    // The metrics dump is the second-to-last line and must carry the
    // registry sections.
    let metrics = Json::parse(lines[lines.len() - 2]).unwrap();
    assert_eq!(metrics.get("event"), Some(&Json::Str("metrics".into())));
    let m = metrics.get("metrics").expect("metrics payload");
    let predicts = m.get("counters").and_then(|c| c.get("predicts"));
    assert_eq!(predicts, Some(&Json::Int(predictions as i128)));
    assert!(m.get("predict_us").and_then(|h| h.get("p99")).is_some());
    assert!(m.get("batch_size").and_then(|h| h.get("count")).is_some());
}

#[test]
fn stdin_style_session_round_trips_a_replay_script() {
    let live = SimulationBuilder::anvil_like().jobs(150).seed(9).run();
    let script = event_script(&live, 3);
    let shards = ShardSet::single(engine());
    let mut responses: Vec<u8> = Vec::new();
    let handled = run_session(&shards, Cursor::new(script.clone()), &mut responses, 32).unwrap();
    assert_eq!(handled as usize, script.lines().count());
    assert_session_transcript(&script, &String::from_utf8(responses).unwrap());

    // The whole script was buffered in one Cursor, so predicts coalesce
    // into true multi-row batches.
    let m = shards.lock(0);
    assert!(m.metrics.batch_size.count() < m.metrics.predicts_total.get());
}

/// Replays a scripted trace and holds the drift monitor to the offline
/// reference: the rolling MAE in the metrics dump must equal
/// `trout_core::eval::rolling_mae` over the same prediction/outcome pairs
/// **bit-for-bit** (the JSON f64 round trip is exact).
#[test]
fn drift_metrics_match_the_offline_evaluation_bit_for_bit() {
    let live = SimulationBuilder::anvil_like().jobs(150).seed(21).run();
    let script = trout_serve::replay_script(&live, 3);
    // Ask for a Prometheus dump too, right before shutdown.
    let script = script.replace(
        "{\"event\":\"metrics\"}\n",
        "{\"event\":\"metrics\"}\n{\"event\":\"metrics\",\"format\":\"prometheus\"}\n",
    );
    let shards = ShardSet::single(engine());
    let mut out: Vec<u8> = Vec::new();
    run_session(&shards, Cursor::new(script.clone()), &mut out, 32).unwrap();
    let responses = String::from_utf8(out).unwrap();
    let resp: Vec<&str> = responses.lines().collect();
    assert_eq!(resp.len(), script.lines().count());

    // Reconstruct served predictions from the transcript: request line i got
    // response line i, so pair predicts with their answers.
    let mut served: std::collections::HashMap<u64, f32> = std::collections::HashMap::new();
    for (req, rsp) in script.lines().zip(&resp) {
        let req = Json::parse(req).unwrap();
        if req.get("event") != Some(&Json::Str("predict".into())) {
            continue;
        }
        let id = match req.get("id") {
            Some(Json::Int(v)) => *v as u64,
            other => panic!("bad predict id {other:?}"),
        };
        let j = Json::parse(rsp).unwrap();
        assert_eq!(j.get("ok"), Some(&Json::Bool(true)), "{rsp}");
        let cutoff = match j.get("cutoff_min") {
            Some(Json::Num(c)) => *c,
            other => panic!("cutoff_min missing: {other:?}"),
        };
        let pred_min = match (j.get("quick_start"), j.get("minutes")) {
            (Some(Json::Bool(true)), _) => (cutoff / 2.0) as f32,
            (_, Some(Json::Num(m))) => *m as f32,
            other => panic!("unreadable prediction {other:?}"),
        };
        served.insert(id, pred_min);
    }
    assert!(served.len() >= 10, "only {} predictions", served.len());

    // Joins happen in start-event order; replay the trace the same way.
    let mut preds = Vec::new();
    let mut actuals = Vec::new();
    for (_, ev) in trace_events(&live) {
        if let ReplayEvent::Start(i) = ev {
            let r = &live.records[i];
            if let Some(&p) = served.get(&r.id) {
                preds.push(p);
                actuals.push(r.queue_time_min() as f32);
            }
        }
    }

    // The JSON metrics dump is third-from-last (then prometheus, shutdown).
    let metrics = Json::parse(resp[resp.len() - 3]).unwrap();
    let drift = metrics
        .get("metrics")
        .and_then(|m| m.get("drift"))
        .expect("drift section");
    assert_eq!(drift.get("joined"), Some(&Json::Int(preds.len() as i128)));
    assert_eq!(
        drift.get("mae_min"),
        Some(&Json::Num(trout_core::eval::rolling_mae(&preds, &actuals))),
        "rolling MAE must match the offline reference bit-for-bit"
    );
    assert_eq!(
        drift.get("within_2x"),
        Some(&Json::Num(trout_core::eval::within_2x_fraction(
            &preds, &actuals
        )))
    );
    let confusion_sum: i128 = ["quick_quick", "quick_long", "long_quick", "long_long"]
        .iter()
        .map(|c| match drift.get("confusion").and_then(|m| m.get(c)) {
            Some(Json::Int(v)) => *v,
            other => panic!("confusion cell {c} missing: {other:?}"),
        })
        .sum();
    assert_eq!(confusion_sum, preds.len() as i128);
    assert!(metrics
        .get("metrics")
        .and_then(|m| m.get("spans"))
        .is_some());

    // The Prometheus dump is second-from-last and carries the same state.
    let prom = Json::parse(resp[resp.len() - 2]).unwrap();
    assert_eq!(prom.get("format"), Some(&Json::Str("prometheus".into())));
    let body = match prom.get("body") {
        Some(Json::Str(b)) => b.clone(),
        other => panic!("prometheus body missing: {other:?}"),
    };
    assert!(body.contains(&format!("trout_serve_drift_joined_total {}", preds.len())));
    assert!(body.contains("trout_serve_drift_mae_min "));
    assert!(body.contains("trout_serve_predicts_total "));
}

/// The wire protocol must not be able to tell how many shards answer it:
/// the same script through 1 and 4 shards yields byte-identical response
/// lines (metrics dumps excluded — merged latency histograms legitimately
/// differ from a single engine's).
#[test]
fn sharded_session_responses_are_byte_identical_to_single_shard() {
    let live = SimulationBuilder::anvil_like().jobs(150).seed(9).run();
    let script = event_script(&live, 3);
    let cfg = ServeConfig {
        refit_every: 0,
        seed: 3,
        ..Default::default()
    };
    let mut transcripts = Vec::new();
    for n in [1usize, 4] {
        let shards = ShardSet::bootstrap(n, 400, &cfg);
        let mut out: Vec<u8> = Vec::new();
        run_session(&shards, Cursor::new(script.clone()), &mut out, 32).unwrap();
        transcripts.push(String::from_utf8(out).unwrap());
    }
    let (single, sharded) = (&transcripts[0], &transcripts[1]);
    assert_eq!(single.lines().count(), sharded.lines().count());
    for (a, b) in single.lines().zip(sharded.lines()) {
        let ja = Json::parse(a).unwrap();
        if ja.get("event") == Some(&Json::Str("metrics".into())) {
            continue;
        }
        assert_eq!(a, b, "response lines match across shard counts");
    }
}

#[test]
fn bad_lines_get_error_responses_and_do_not_kill_the_session() {
    let shards = ShardSet::single(engine());
    let script = "garbage\n\
                  {\"event\":\"predict\",\"id\":5,\"time\":0}\n\
                  {\"event\":\"metrics\"}\n";
    let mut out: Vec<u8> = Vec::new();
    run_session(&shards, Cursor::new(script), &mut out, 8).unwrap();
    let responses = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = responses.lines().collect();
    assert_eq!(lines.len(), 3);
    // Malformed JSON → parse error; predict of an unsubmitted id → protocol
    // error; metrics still succeeds and counts both failures.
    let first = Json::parse(lines[0]).unwrap();
    assert_eq!(first.get("ok"), Some(&Json::Bool(false)));
    let second = Json::parse(lines[1]).unwrap();
    assert_eq!(second.get("ok"), Some(&Json::Bool(false)));
    let third = Json::parse(lines[2]).unwrap();
    assert_eq!(
        third
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("errors")),
        Some(&Json::Int(2))
    );
}

#[test]
fn tcp_session_serves_a_connection() {
    use std::io::{BufRead, BufReader, Write};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shared = Arc::new(ShardSet::single(engine()));
    let server = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || run_tcp(shared, listener, 16, Some(1)))
    };

    let live = SimulationBuilder::anvil_like().jobs(60).seed(12).run();
    let script = event_script(&live, 5);
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(script.as_bytes()).unwrap();
    conn.flush().unwrap();

    let mut responses = String::new();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut line = String::new();
    let expect = script.lines().count();
    for _ in 0..expect {
        line.clear();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection closed early"
        );
        responses.push_str(&line);
    }
    drop(reader);
    drop(conn);
    server.join().unwrap().unwrap();
    assert_session_transcript(&script, &responses);
}
