//! The crate-wide error type.
//!
//! Everything user-facing (CLI commands, checkpoint loading, the serve
//! protocol) previously reported failures as bare `String`s, which made the
//! failure class invisible to callers — the server cannot decide whether to
//! reject one request or shut down without parsing prose. [`TroutError`]
//! carries the class as a variant; `From` impls let `?` lift the common
//! underlying errors.

use trout_std::json::JsonError;

/// Classified failure from any TROUT entry point.
#[derive(Debug)]
pub enum TroutError {
    /// Filesystem or socket failure.
    Io(std::io::Error),
    /// Malformed input: CSV/SWF traces, JSON checkpoints, protocol frames.
    Parse(String),
    /// Invalid or inconsistent configuration (flags, knobs, shapes).
    Config(String),
    /// Model-level failure: training produced no model, checkpoint
    /// incompatible with the feature schema, etc.
    Model(String),
    /// Serve-protocol violation: unknown event kind, illegal lifecycle
    /// transition, reference to an unknown job.
    Protocol(String),
    /// Admission control shed the request: its lane's queue already holds
    /// more work than the latency budget can absorb, so queueing it would
    /// be a guaranteed SLO violation. `retry_after_ms` is the controller's
    /// estimate of when the lane will have drained enough to admit.
    Overloaded {
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon is a replication follower: it serves predicts but refuses
    /// state-changing lifecycle events — those must go to the leader, whose
    /// journal stream is this instance's only source of state truth.
    ReadOnly(String),
}

impl std::fmt::Display for TroutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TroutError::Io(e) => write!(f, "io error: {e}"),
            TroutError::Parse(m) => write!(f, "parse error: {m}"),
            TroutError::Config(m) => write!(f, "config error: {m}"),
            TroutError::Model(m) => write!(f, "model error: {m}"),
            TroutError::Protocol(m) => write!(f, "protocol error: {m}"),
            TroutError::Overloaded { retry_after_ms } => write!(
                f,
                "overloaded: lane queue exceeds its latency budget, retry after {retry_after_ms} ms"
            ),
            TroutError::ReadOnly(m) => write!(f, "read_only: {m}"),
        }
    }
}

impl std::error::Error for TroutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TroutError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TroutError {
    fn from(e: std::io::Error) -> Self {
        TroutError::Io(e)
    }
}

impl From<JsonError> for TroutError {
    fn from(e: JsonError) -> Self {
        TroutError::Parse(e.to_string())
    }
}

impl From<trout_features::incremental::EventError> for TroutError {
    fn from(e: trout_features::incremental::EventError) -> Self {
        TroutError::Protocol(e.to_string())
    }
}

/// Shorthand used throughout the CLI and server.
pub type Result<T> = std::result::Result<T, TroutError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_the_class() {
        let cases: Vec<(TroutError, &str)> = vec![
            (
                TroutError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
                "io error",
            ),
            (TroutError::Parse("bad row".into()), "parse error"),
            (TroutError::Config("bad flag".into()), "config error"),
            (TroutError::Model("no model".into()), "model error"),
            (TroutError::Protocol("bad event".into()), "protocol error"),
            (TroutError::Overloaded { retry_after_ms: 25 }, "overloaded"),
            (
                TroutError::ReadOnly("follower refuses lifecycle".into()),
                "read_only",
            ),
        ];
        for (e, prefix) in cases {
            assert!(e.to_string().starts_with(prefix), "{e}");
        }
    }

    #[test]
    fn from_impls_classify() {
        let io: TroutError = std::io::Error::new(std::io::ErrorKind::Other, "x").into();
        assert!(matches!(io, TroutError::Io(_)));
        let js: TroutError = JsonError::new("broken").into();
        assert!(matches!(js, TroutError::Parse(_)));
        let ev: TroutError = trout_features::incremental::EventError::UnknownJob(7).into();
        assert!(matches!(ev, TroutError::Protocol(_)));
    }
}
