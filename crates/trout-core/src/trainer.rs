//! Training the hierarchical model.

use trout_features::Dataset;
use trout_linalg::Matrix;
use trout_ml::calibration::PlattScaler;
use trout_ml::nn::{Activation, Loss, Mlp, MlpConfig};
use trout_ml::smote::{smote_balance, SmoteConfig};

use crate::model::HierarchicalModel;

/// Transform applied to the regression target (queue minutes).
///
/// The paper regresses minutes directly under smooth-L1; with MAPE as the
/// evaluation metric, training in `ln(1+y)` space makes the loss itself
/// relative-error-shaped and conditions the output scale, so it is the
/// default here. `Raw` reproduces the paper's literal setup; ablation A10
/// compares the two.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetTransform {
    /// Predict minutes directly.
    Raw,
    /// Predict `ln(1 + minutes)`, invert with `expm1`.
    Log1p,
}

trout_std::impl_json_enum!(TargetTransform { Raw, Log1p });

impl TargetTransform {
    /// Forward transform applied to training targets.
    pub fn forward(self, minutes: f32) -> f32 {
        match self {
            TargetTransform::Raw => minutes,
            TargetTransform::Log1p => (1.0 + minutes.max(0.0)).ln(),
        }
    }

    /// Inverse transform applied to network outputs.
    pub fn inverse(self, raw: f32) -> f32 {
        match self {
            TargetTransform::Raw => raw,
            // Clamp the exponent so a wild logit cannot overflow to inf.
            TargetTransform::Log1p => raw.min(13.0).exp() - 1.0,
        }
    }
}

/// Full training configuration for TROUT.
#[derive(Debug, Clone)]
pub struct TroutConfig {
    /// Quick-start cutoff in minutes (10 in the paper; 5/30 in ablation A1).
    pub cutoff_min: f32,
    /// Classifier hidden layers (the paper uses two).
    pub classifier_hidden: Vec<usize>,
    /// Classifier epochs.
    pub classifier_epochs: usize,
    /// Regressor hidden layers (the paper uses three).
    pub regressor_hidden: Vec<usize>,
    /// Regressor epochs.
    pub regressor_epochs: usize,
    /// Hidden activation (ELU in the paper).
    pub activation: Activation,
    /// Regressor loss (smooth L1 in the paper).
    pub regression_loss: Loss,
    /// Dropout rate for both networks.
    pub dropout: f32,
    /// Batch normalization in the regressor (rejected by the paper; A5).
    pub batchnorm: bool,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SMOTE-balance the classifier's training classes.
    pub use_smote: bool,
    /// Regression target transform.
    pub target_transform: TargetTransform,
    /// Master seed.
    pub seed: u64,
}

trout_std::impl_json_struct!(TroutConfig {
    cutoff_min,
    classifier_hidden,
    classifier_epochs,
    regressor_hidden,
    regressor_epochs,
    activation,
    regression_loss,
    dropout,
    batchnorm,
    lr,
    batch_size,
    use_smote,
    target_transform,
    seed
});

impl Default for TroutConfig {
    /// The production configuration. The regressor hyper-parameters come
    /// from this repo's Optuna-substitute search ([`crate::tuner`], 24-trial
    /// successive halving on validation folds 2–3 of a 20k-job trace):
    /// lr ≈ 1.1e-3, 56 epochs, hidden [99, 66, 44], dropout 0.26 — and the
    /// search independently selected ELU over ReLU/tanh, as the paper did.
    fn default() -> Self {
        TroutConfig {
            cutoff_min: 10.0,
            classifier_hidden: vec![64, 32],
            classifier_epochs: 12,
            regressor_hidden: vec![99, 66, 44],
            regressor_epochs: 56,
            activation: Activation::ELU,
            regression_loss: Loss::SMOOTH_L1,
            dropout: 0.26,
            batchnorm: false,
            lr: 1.07e-3,
            batch_size: 256,
            use_smote: true,
            target_transform: TargetTransform::Log1p,
            seed: 0,
        }
    }
}

impl TroutConfig {
    /// Tiny configuration for doc tests / CI smoke runs.
    pub fn smoke() -> TroutConfig {
        TroutConfig {
            classifier_hidden: vec![16],
            classifier_epochs: 3,
            regressor_hidden: vec![16, 8],
            regressor_epochs: 5,
            ..Default::default()
        }
    }
}

/// Trains [`HierarchicalModel`]s from featurized datasets.
#[derive(Debug, Clone)]
pub struct TroutTrainer {
    config: TroutConfig,
}

impl TroutTrainer {
    /// Creates a trainer.
    pub fn new(config: TroutConfig) -> TroutTrainer {
        TroutTrainer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TroutConfig {
        &self.config
    }

    /// Trains on every row of the dataset.
    pub fn fit(&self, ds: &Dataset) -> HierarchicalModel {
        let all: Vec<usize> = (0..ds.len()).collect();
        self.fit_rows(ds, &all)
    }

    /// Trains on a subset of rows (a CV fold's training window).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or contains no long-wait job (the regressor
    /// would have nothing to learn from).
    pub fn fit_rows(&self, ds: &Dataset, rows: &[usize]) -> HierarchicalModel {
        assert!(!rows.is_empty(), "empty training set");
        let cfg = &self.config;
        let (x, y) = ds.select(rows);

        // --- Stage 1: quick-start classifier on (optionally) SMOTE-balanced
        // classes. Label 1 = quick start (< cutoff).
        let labels: Vec<f32> = y
            .iter()
            .map(|&q| if q < cfg.cutoff_min { 1.0 } else { 0.0 })
            .collect();
        let has_both_classes = labels.iter().any(|&l| l >= 0.5) && labels.iter().any(|&l| l < 0.5);
        let (cx, cy) = if cfg.use_smote && has_both_classes {
            let _span = trout_obs::span!("core.train_smote");
            smote_balance(
                &x,
                &labels,
                &SmoteConfig {
                    k: 5,
                    target_ratio: 1.0,
                    majority_cap_ratio: Some(1.0),
                    seed: cfg.seed,
                },
            )
        } else {
            (x.clone(), labels)
        };
        let mut ccfg = MlpConfig::new(x.cols(), cfg.classifier_hidden.clone());
        ccfg.activation = cfg.activation;
        ccfg.loss = Loss::BceWithLogits;
        ccfg.dropout = cfg.dropout;
        ccfg.lr = cfg.lr;
        ccfg.epochs = cfg.classifier_epochs;
        ccfg.batch_size = cfg.batch_size;
        ccfg.seed = cfg.seed ^ 0xC1A5;
        let (classifier, _) = {
            let _span = trout_obs::span!("core.train_classifier");
            Mlp::train(&ccfg, &cx, &cy)
        };

        // --- Stage 2: regressor on the long-wait jobs only.
        let long_rows: Vec<usize> = (0..y.len()).filter(|&i| y[i] >= cfg.cutoff_min).collect();
        assert!(
            !long_rows.is_empty(),
            "no job in the training window queued >= {} minutes",
            cfg.cutoff_min
        );
        let rx = x.select_rows(&long_rows);
        let ry: Vec<f32> = long_rows
            .iter()
            .map(|&i| cfg.target_transform.forward(y[i]))
            .collect();
        let mut rcfg = MlpConfig::new(x.cols(), cfg.regressor_hidden.clone());
        rcfg.activation = cfg.activation;
        rcfg.loss = cfg.regression_loss;
        rcfg.dropout = cfg.dropout;
        rcfg.batchnorm = cfg.batchnorm;
        rcfg.lr = cfg.lr;
        rcfg.epochs = cfg.regressor_epochs;
        rcfg.batch_size = cfg.batch_size;
        rcfg.seed = cfg.seed ^ 0x4E47;
        let (regressor, _) = {
            let _span = trout_obs::span!("core.train_regressor");
            Mlp::train(&rcfg, &rx, &ry)
        };

        // Calibrate classifier probabilities on the (untouched, unbalanced)
        // most recent tenth of the training window.
        let cal_start = rows.len() - (rows.len() / 10).max(1);
        let calibrator = if cal_start > 0 && cal_start < rows.len() {
            let _span = trout_obs::span!("core.train_calibration");
            let cal_idx: Vec<usize> = (cal_start..rows.len()).collect();
            let cx2 = x.select_rows(&cal_idx);
            let cal_labels: Vec<f32> = cal_idx
                .iter()
                .map(|&i| if y[i] < cfg.cutoff_min { 1.0 } else { 0.0 })
                .collect();
            let logits = classifier.predict(&cx2);
            Some(PlattScaler::fit(&logits, &cal_labels))
        } else {
            None
        };

        HierarchicalModel {
            cutoff_min: cfg.cutoff_min,
            classifier,
            regressor,
            target_transform: cfg.target_transform,
            calibrator,
        }
    }

    /// Trains on explicit `(x, y)` matrices (used by the leakage ablation,
    /// which reorders rows outside any [`Dataset`]).
    pub fn fit_xy(&self, x: &Matrix, y: &[f32]) -> HierarchicalModel {
        let cfg = &self.config;
        assert_eq!(x.rows(), y.len(), "x/y mismatch");
        // Delegate through a temporary Dataset-free path: reuse fit_rows by
        // building a minimal dataset facade is more code than duplicating the
        // two stages, so wrap: construct a Dataset-like flow inline.
        let ds = Dataset {
            x: x.clone(),
            raw: x.clone(),
            y_queue_min: y.to_vec(),
            ids: (0..y.len() as u64).collect(),
            scaler: trout_features::Scaling::None.fit(x),
        };
        let all: Vec<usize> = (0..ds.len()).collect();
        TroutTrainer {
            config: cfg.clone(),
        }
        .fit_rows(&ds, &all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchPredictionRequest, PredictionRequest, Predictor};
    use trout_features::FeaturePipeline;
    use trout_ml::metrics;
    use trout_slurmsim::SimulationBuilder;

    fn small_dataset() -> Dataset {
        let trace = SimulationBuilder::anvil_like().jobs(2_500).seed(14).run();
        FeaturePipeline::standard().build(&trace)
    }

    #[test]
    fn target_transform_round_trips() {
        for t in [TargetTransform::Raw, TargetTransform::Log1p] {
            for m in [0.0f32, 1.0, 10.0, 777.0] {
                let rt = t.inverse(t.forward(m));
                assert!((rt - m).abs() < 1e-2 * (1.0 + m), "{t:?} {m} -> {rt}");
            }
        }
    }

    #[test]
    fn log1p_inverse_is_overflow_safe() {
        assert!(TargetTransform::Log1p.inverse(1e9).is_finite());
    }

    #[test]
    fn smoke_training_produces_working_model() {
        let ds = small_dataset();
        let model = TroutTrainer::new(TroutConfig::smoke()).fit(&ds);
        let pred = model.predict(PredictionRequest::new(ds.row(0)));
        // Any valid variant is fine; just exercise Algorithm 1.
        let _ = pred.message();
        for p in model.predict_batch(BatchPredictionRequest::with_minutes(&ds.x)) {
            assert!((0.0..=1.0).contains(&p.quick_proba));
            assert!((0.0..=1.0).contains(&p.calibrated_proba));
            let m = p.minutes.expect("want_minutes set");
            assert!(m.is_finite() && m >= 0.0);
        }
    }

    #[test]
    fn batched_inference_is_bitwise_identical_to_row_by_row() {
        // The serve daemon coalesces concurrent requests into one
        // predict_batch call; that is only sound because the MLP forward
        // pass is row-independent. Pin it down.
        let ds = small_dataset();
        let model = TroutTrainer::new(TroutConfig::smoke()).fit(&ds);
        let batch = model.predict_batch(BatchPredictionRequest::with_minutes(&ds.x));
        for i in (0..ds.len()).step_by(53) {
            let single = model.predict(PredictionRequest::with_minutes(ds.row(i)));
            assert_eq!(single, batch[i], "row {i}");
        }
    }

    #[test]
    fn classifier_beats_chance_on_held_out_tail() {
        let ds = small_dataset();
        let split = ds.len() * 4 / 5;
        let train: Vec<usize> = (0..split).collect();
        let mut cfg = TroutConfig::smoke();
        cfg.classifier_epochs = 8;
        let model = TroutTrainer::new(cfg).fit_rows(&ds, &train);
        let test: Vec<usize> = (split..ds.len()).collect();
        let (tx, ty) = ds.select(&test);
        let probs: Vec<f32> = model
            .predict_batch(BatchPredictionRequest::new(&tx))
            .into_iter()
            .map(|p| p.quick_proba)
            .collect();
        let labels: Vec<f32> = ty
            .iter()
            .map(|&q| if q < 10.0 { 1.0 } else { 0.0 })
            .collect();
        let acc = metrics::binary_accuracy(&probs, &labels);
        assert!(acc > 0.6, "held-out accuracy {acc}");
    }

    #[test]
    fn checkpoint_round_trip_preserves_predictions() {
        let ds = small_dataset();
        let model = TroutTrainer::new(TroutConfig::smoke()).fit(&ds);
        let json = model.to_json();
        let back = HierarchicalModel::from_json(&json).unwrap();
        for i in (0..ds.len()).step_by(97) {
            let req = PredictionRequest::with_minutes(ds.row(i));
            assert_eq!(model.predict(req), back.predict(req), "row {i}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let ds = small_dataset();
        let a = TroutTrainer::new(TroutConfig::smoke()).fit(&ds);
        let b = TroutTrainer::new(TroutConfig::smoke()).fit(&ds);
        for i in (0..ds.len()).step_by(131) {
            let req = PredictionRequest::with_minutes(ds.row(i));
            assert_eq!(a.predict(req), b.predict(req));
        }
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_training() {
        let ds = small_dataset();
        let _ = TroutTrainer::new(TroutConfig::smoke()).fit_rows(&ds, &[]);
    }
}

#[cfg(test)]
mod calibration_tests {
    use super::*;
    use crate::{BatchPredictionRequest, PredictionRequest, Predictor};
    use trout_features::FeaturePipeline;
    use trout_ml::calibration::expected_calibration_error;
    use trout_slurmsim::SimulationBuilder;

    #[test]
    fn calibrated_probabilities_beat_raw_on_held_out_data() {
        let trace = SimulationBuilder::anvil_like().jobs(6_000).seed(42).run();
        let ds = FeaturePipeline::standard().build(&trace);
        let mut cfg = TroutConfig::smoke();
        cfg.classifier_epochs = 8;
        let n = ds.len();
        let train: Vec<usize> = (0..n * 5 / 6).collect();
        let model = TroutTrainer::new(cfg).fit_rows(&ds, &train);
        let test: Vec<usize> = (n * 5 / 6..n).collect();
        let (tx, ty) = ds.select(&test);
        let labels: Vec<f32> = ty
            .iter()
            .map(|&q| if q < 10.0 { 1.0 } else { 0.0 })
            .collect();
        let preds = model.predict_batch(BatchPredictionRequest::new(&tx));
        let raw: Vec<f32> = preds.iter().map(|p| p.quick_proba).collect();
        let cal: Vec<f32> = preds.iter().map(|p| p.calibrated_proba).collect();
        let ece_raw = expected_calibration_error(&raw, &labels, 10);
        let ece_cal = expected_calibration_error(&cal, &labels, 10);
        assert!(
            ece_cal <= ece_raw + 0.02,
            "calibration should not hurt: raw {ece_raw:.4} cal {ece_cal:.4}"
        );
        assert!(cal.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn old_checkpoints_without_calibrator_still_load() {
        let trace = SimulationBuilder::anvil_like().jobs(2_500).seed(14).run();
        let ds = FeaturePipeline::standard().build(&trace);
        let model = TroutTrainer::new(TroutConfig::smoke()).fit(&ds);
        // Strip the calibrator field to emulate a pre-calibration checkpoint.
        let mut v = trout_std::json::Json::parse(&model.to_json()).unwrap();
        v.remove("calibrator").unwrap();
        let legacy = HierarchicalModel::from_json(&v.to_string()).unwrap();
        let p = legacy.predict(PredictionRequest::new(ds.row(0)));
        assert!((0.0..=1.0).contains(&p.calibrated_proba));
        // Without a calibrator the calibrated probability is the raw one.
        assert_eq!(p.calibrated_proba, p.quick_proba);
    }
}
