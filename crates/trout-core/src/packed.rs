//! Packed (inference-only) form of the hierarchical model.
//!
//! [`PackedHierarchical`] is the serving fast path: both networks packed
//! via [`trout_ml::nn::PackedMlp`] (transposed weights, batch norm folded,
//! element type `E`), the Platt scaler reduced to its two coefficients, and
//! Algorithm 1 run row-by-row against caller-owned buffers.
//!
//! A packed model is **derived state**. It is rebuilt from the
//! authoritative [`HierarchicalModel`] at every publish point (initial
//! load, online refit, crash recovery) and is never serialized, journaled
//! or snapshotted — replaying a journal on a node with a different packing
//! mode must converge to the same authoritative state.
//!
//! With `E = f32` the dot kernels route through the runtime-dispatched SIMD
//! tiers; with `E = f64` the same layout runs in double precision and acts
//! as the reference for the f32 accuracy delta. Neither is bit-identical to
//! the exact [`HierarchicalModel`] path (the BN fold reassociates), which
//! is why serving only uses this behind the explicit `--infer-f32` opt-in.

use trout_linalg::Matrix;
use trout_ml::nn::{Element, PackedMlp, PackedScratch};

use crate::model::HierarchicalModel;
use crate::predictor::{QueueEstimate, QueuePrediction};
use crate::trainer::TargetTransform;

/// Reusable buffers for [`PackedHierarchical`] inference. Architecture- and
/// weight-independent, so one instance survives hot swaps unchanged.
#[derive(Debug, Default)]
pub struct PackedPredictScratch<E> {
    cls: PackedScratch<E>,
    reg: PackedScratch<E>,
}

impl<E: Element> PackedPredictScratch<E> {
    /// An empty scratch; buffers warm up on first use.
    pub fn new() -> Self {
        PackedPredictScratch {
            cls: PackedScratch::new(),
            reg: PackedScratch::new(),
        }
    }
}

/// The two-stage model packed for element type `E`.
#[derive(Debug, Clone)]
pub struct PackedHierarchical<E> {
    cutoff_min: f32,
    classifier: PackedMlp<E>,
    regressor: PackedMlp<E>,
    /// Platt `(a, b)`, when the source model carried a calibrator.
    platt: Option<(f32, f32)>,
    target_transform: TargetTransform,
}

impl<E: Element> PackedHierarchical<E> {
    /// Packs a trained model. Cheap relative to a refit (one pass over the
    /// weights), so it runs inline at every publish point.
    pub fn from_model(m: &HierarchicalModel) -> Self {
        PackedHierarchical {
            cutoff_min: m.cutoff_min,
            classifier: PackedMlp::from_mlp(&m.classifier),
            regressor: PackedMlp::from_mlp(&m.regressor),
            platt: m.calibrator.as_ref().map(|c| c.coefficients()),
            target_transform: m.target_transform,
        }
    }

    /// The element type this packing runs in (`"f32"` / `"f64"`).
    pub fn element_name(&self) -> &'static str {
        E::NAME
    }

    /// Algorithm 1 for one feature row against caller-owned scratch.
    pub fn predict_row(&self, row: &[f32], s: &mut PackedPredictScratch<E>) -> QueuePrediction {
        let logit = self.classifier.forward_row(row, &mut s.cls);
        let quick_proba = E::sigmoid(E::from_f32(logit)).to_f32();
        let calibrated_proba = match self.platt {
            Some((a, b)) => E::sigmoid(E::from_f32(a * logit + b)).to_f32(),
            None => quick_proba,
        };
        let quick = quick_proba >= 0.5;
        let minutes = if !quick {
            let raw = self.regressor.forward_row(row, &mut s.reg);
            Some(self.target_transform.inverse(raw).max(0.0))
        } else {
            None
        };
        QueuePrediction {
            estimate: if quick {
                QueueEstimate::QuickStart
            } else {
                QueueEstimate::Minutes(minutes.expect("regressed above"))
            },
            quick_proba,
            calibrated_proba,
            minutes,
            cutoff_min: self.cutoff_min,
            lane: crate::Lane::Normal,
        }
    }

    /// Batched Algorithm 1 into a caller-owned vector (cleared first).
    /// Zero heap allocations once `s` and `out` have warmed up. When
    /// `want_minutes` is set the regressor runs for every row, matching
    /// [`HierarchicalModel::predict_batch_in`] semantics.
    pub fn predict_batch_into(
        &self,
        x: &Matrix,
        want_minutes: bool,
        s: &mut PackedPredictScratch<E>,
        out: &mut Vec<QueuePrediction>,
    ) {
        out.clear();
        for r in 0..x.rows() {
            let row = x.row(r);
            let mut p = self.predict_row(row, s);
            if want_minutes && p.minutes.is_none() {
                let raw = self.regressor.forward_row(row, &mut s.reg);
                p.minutes = Some(self.target_transform.inverse(raw).max(0.0));
            }
            out.push(p);
        }
    }
}
