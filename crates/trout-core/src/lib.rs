//! TROUT — the hierarchical queue-time predictor (the paper's contribution).
//!
//! The system is two densely connected feed-forward networks arranged
//! hierarchically (§III, Fig. 1, Algorithm 1):
//!
//! 1. a **binary classifier** that predicts whether a job will start within
//!    ten minutes ("quick start"), trained on SMOTE-balanced classes, and
//! 2. a **regression model** that predicts the queue time in minutes for the
//!    jobs the classifier flags as long, trained with smooth-L1 loss and ELU
//!    activations on time-series cross-validation folds.
//!
//! Upstream of both sits a **random-forest runtime predictor** whose outputs
//! feed three of the 33 features (`Pred Runtime`, `Par Queue Pred
//! Timelimit`, `Par Running Pred Timelimit`).
//!
//! Entry points:
//! * [`featurize`] — trace → [`trout_features::Dataset`] with the runtime
//!   model wired in.
//! * [`TroutTrainer::fit`] — dataset → [`HierarchicalModel`].
//! * [`Predictor::predict`] — Algorithm 1 behind the typed request/response
//!   API every consumer (CLI, eval, benches, the serve daemon) shares.
//! * [`eval`] — the paper's fold-by-fold evaluation and the four-model
//!   comparison behind Figs. 6–9.

pub mod error;
pub mod eval;
mod model;
pub mod online;
mod packed;
mod predictor;
mod runtime;
mod trainer;
pub mod tuner;

pub use error::TroutError;
pub use model::{HierarchicalModel, PredictorScratch};
pub use packed::{PackedHierarchical, PackedPredictScratch};
pub use predictor::{
    BatchPredictionRequest, Deadline, Lane, PredictionRequest, Predictor, QueueEstimate,
    QueuePrediction, LANES,
};
pub use runtime::RuntimePredictor;
pub use trainer::{TargetTransform, TroutConfig, TroutTrainer};
pub use tuner::{tune_regressor, TunerConfig};

use trout_features::{Dataset, FeaturePipeline};
use trout_slurmsim::Trace;

/// Featurizes a trace the way the paper does: train the runtime random
/// forest on the older part of the trace (the leading `train_frac`), predict
/// runtimes for every job, and build the 33-feature dataset with those
/// predictions wired into the `Pred Runtime` features.
pub fn featurize(trace: &Trace, train_frac: f64, seed: u64) -> (Dataset, RuntimePredictor) {
    let predictor = RuntimePredictor::fit_on_prefix(trace, train_frac, seed);
    let preds = predictor.predict_all(trace);
    let ds = FeaturePipeline::standard().build_with_runtime_predictions(trace, preds);
    (ds, predictor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trout_slurmsim::SimulationBuilder;

    #[test]
    fn featurize_end_to_end() {
        let trace = SimulationBuilder::anvil_like().jobs(400).seed(3).run();
        let (ds, predictor) = featurize(&trace, 0.6, 1);
        assert_eq!(ds.len(), 400);
        // Runtime predictions are bounded by sane limits.
        let preds = predictor.predict_all(&trace);
        for (p, r) in preds.iter().zip(&trace.records) {
            assert!(
                *p >= 0.0 && *p <= r.timelimit_min as f64 * 1.5 + 1.0,
                "pred {p} for {r:?}"
            );
        }
    }
}
