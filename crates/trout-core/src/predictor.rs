//! The typed prediction API — one surface for every consumer.
//!
//! The CLI, the evaluation harness, the benches, and the serve daemon all
//! used to reach into [`HierarchicalModel`](crate::HierarchicalModel) through
//! a zoo of inherent methods (`predict`, `quick_start_proba`,
//! `calibrated_quick_proba`, `regress_minutes`, plus `_batch` twins). The
//! [`Predictor`] trait replaces them: a [`PredictionRequest`] goes in, a
//! [`QueuePrediction`] comes out carrying the Algorithm-1 decision *and* the
//! probabilities and regressed minutes behind it, so callers pick fields
//! instead of picking methods.
//!
//! Batch and single-row paths are numerically interchangeable: the MLP
//! forward pass is row-independent (batch-norm layers use running statistics
//! at inference), so `predict_batch` over `n` rows is bitwise identical to
//! `n` calls of `predict` — the property the serve daemon's micro-batching
//! relies on, and one the trainer's tests pin down.

use trout_linalg::Matrix;
use trout_std::json::{FromJson, Json, JsonError, ToJson};

/// Algorithm 1's decision: either "less than the cutoff" or a concrete
/// number of minutes from the regressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueEstimate {
    /// Predicted to start within the cutoff (10 minutes in the paper).
    QuickStart,
    /// Predicted queue time in minutes.
    Minutes(f32),
}

impl QueueEstimate {
    /// The user-facing message of Algorithm 1.
    pub fn message(&self, cutoff_min: f32) -> String {
        match self {
            QueueEstimate::QuickStart => {
                format!("Predicted to take less than {cutoff_min:.0} minutes")
            }
            QueueEstimate::Minutes(m) => format!("Predicted to start in {m:.0} minutes"),
        }
    }

    /// Collapses to a number for metric computation: quick starts count as
    /// half the cutoff (the class's central value).
    pub fn as_minutes(&self, cutoff_min: f32) -> f32 {
        match self {
            QueueEstimate::QuickStart => cutoff_min / 2.0,
            QueueEstimate::Minutes(m) => *m,
        }
    }
}

// Serde's externally-tagged layout by hand (the macro only covers unit
// variants): `"QuickStart"` or `{"Minutes":12.5}`. Needed so the serve
// daemon can persist drift-monitor pending joins across a crash.
impl ToJson for QueueEstimate {
    fn to_json(&self) -> Json {
        match self {
            QueueEstimate::QuickStart => Json::Str("QuickStart".to_string()),
            QueueEstimate::Minutes(m) => Json::Obj(vec![("Minutes".to_string(), m.to_json())]),
        }
    }
}

impl FromJson for QueueEstimate {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Str(s) if s == "QuickStart" => Ok(QueueEstimate::QuickStart),
            Json::Obj(_) => {
                let m = j
                    .get("Minutes")
                    .ok_or_else(|| JsonError::new("QueueEstimate: missing Minutes"))?;
                Ok(QueueEstimate::Minutes(f32::from_json(m)?))
            }
            other => Err(JsonError::new(format!(
                "invalid QueueEstimate variant: {other}"
            ))),
        }
    }
}

/// One job's features on their way into a [`Predictor`].
#[derive(Debug, Clone, Copy)]
pub struct PredictionRequest<'a> {
    /// The scaled feature row (Table-II order).
    pub features: &'a [f32],
    /// Force the regressor to run even for predicted quick starts, so
    /// [`QueuePrediction::minutes`] is always populated. Algorithm 1 itself
    /// only regresses jobs classified as long; evaluation code that scores
    /// the regressor on *known*-long jobs needs the unconditional estimate.
    pub want_minutes: bool,
}

impl<'a> PredictionRequest<'a> {
    /// The Algorithm-1 request: regress only when classified long.
    pub fn new(features: &'a [f32]) -> PredictionRequest<'a> {
        PredictionRequest {
            features,
            want_minutes: false,
        }
    }

    /// Requests the regressor's minutes for every job, quick or not.
    pub fn with_minutes(features: &'a [f32]) -> PredictionRequest<'a> {
        PredictionRequest {
            features,
            want_minutes: true,
        }
    }
}

/// A batch of feature rows (one job per row).
#[derive(Debug, Clone, Copy)]
pub struct BatchPredictionRequest<'a> {
    /// Scaled feature matrix, `n_jobs x n_features`.
    pub features: &'a Matrix,
    /// See [`PredictionRequest::want_minutes`].
    pub want_minutes: bool,
}

impl<'a> BatchPredictionRequest<'a> {
    /// The Algorithm-1 request for every row.
    pub fn new(features: &'a Matrix) -> BatchPredictionRequest<'a> {
        BatchPredictionRequest {
            features,
            want_minutes: false,
        }
    }

    /// Requests regressed minutes for every row.
    pub fn with_minutes(features: &'a Matrix) -> BatchPredictionRequest<'a> {
        BatchPredictionRequest {
            features,
            want_minutes: true,
        }
    }
}

/// Everything a prediction consumer might want, in one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuePrediction {
    /// The Algorithm-1 decision.
    pub estimate: QueueEstimate,
    /// Raw quick-start probability (sigmoid of the classifier logit — the
    /// quantity Algorithm 1 thresholds at 0.5).
    pub quick_proba: f32,
    /// Platt-calibrated quick-start probability (equals `quick_proba` when
    /// no calibrator was fitted).
    pub calibrated_proba: f32,
    /// The regressor's queue-time estimate in minutes. Always present for
    /// jobs classified long; present for quick starts only when the request
    /// set `want_minutes`.
    pub minutes: Option<f32>,
    /// The cutoff (minutes) the decision was made against.
    pub cutoff_min: f32,
}

trout_std::impl_json_struct!(QueuePrediction {
    estimate,
    quick_proba,
    calibrated_proba,
    minutes,
    cutoff_min,
});

impl QueuePrediction {
    /// The user-facing message of Algorithm 1.
    pub fn message(&self) -> String {
        self.estimate.message(self.cutoff_min)
    }

    /// Collapses to a number for metric computation.
    pub fn as_minutes(&self) -> f32 {
        self.estimate.as_minutes(self.cutoff_min)
    }
}

/// A model that turns feature rows into [`QueuePrediction`]s — the single
/// prediction surface shared by the CLI, evaluation, benches, and the serve
/// daemon.
pub trait Predictor {
    /// The quick-start cutoff (minutes) this predictor decides against.
    fn cutoff_min(&self) -> f32;

    /// Predicts one job.
    fn predict(&self, req: PredictionRequest<'_>) -> QueuePrediction;

    /// Predicts a batch. The default delegates row by row; implementations
    /// with a cheaper batched forward pass override it (and must stay
    /// bitwise identical to the row-by-row path).
    fn predict_batch(&self, req: BatchPredictionRequest<'_>) -> Vec<QueuePrediction> {
        (0..req.features.rows())
            .map(|r| {
                self.predict(PredictionRequest {
                    features: req.features.row(r),
                    want_minutes: req.want_minutes,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_follow_algorithm_1() {
        assert_eq!(
            QueueEstimate::QuickStart.message(10.0),
            "Predicted to take less than 10 minutes"
        );
        assert_eq!(
            QueueEstimate::Minutes(42.4).message(10.0),
            "Predicted to start in 42 minutes"
        );
    }

    #[test]
    fn as_minutes_collapses_quick_starts() {
        assert_eq!(QueueEstimate::QuickStart.as_minutes(10.0), 5.0);
        assert_eq!(QueueEstimate::Minutes(77.0).as_minutes(10.0), 77.0);
        let p = QueuePrediction {
            estimate: QueueEstimate::QuickStart,
            quick_proba: 0.9,
            calibrated_proba: 0.8,
            minutes: None,
            cutoff_min: 10.0,
        };
        assert_eq!(p.as_minutes(), 5.0);
        assert_eq!(p.message(), "Predicted to take less than 10 minutes");
    }

    #[test]
    fn predictions_round_trip_through_json() {
        for p in [
            QueuePrediction {
                estimate: QueueEstimate::QuickStart,
                quick_proba: 0.9,
                calibrated_proba: 0.8,
                minutes: None,
                cutoff_min: 10.0,
            },
            QueuePrediction {
                estimate: QueueEstimate::Minutes(123.456),
                quick_proba: 0.1,
                calibrated_proba: 0.2,
                minutes: Some(123.456),
                cutoff_min: 10.0,
            },
        ] {
            let back = QueuePrediction::from_json_str(&p.to_json_string()).unwrap();
            assert_eq!(back, p);
        }
        assert!(QueueEstimate::from_json_str("\"Slow\"").is_err());
    }
}
