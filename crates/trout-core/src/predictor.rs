//! The typed prediction API — one surface for every consumer.
//!
//! The CLI, the evaluation harness, the benches, and the serve daemon all
//! used to reach into [`HierarchicalModel`](crate::HierarchicalModel) through
//! a zoo of inherent methods (`predict`, `quick_start_proba`,
//! `calibrated_quick_proba`, `regress_minutes`, plus `_batch` twins). The
//! [`Predictor`] trait replaces them: a [`PredictionRequest`] goes in, a
//! [`QueuePrediction`] comes out carrying the Algorithm-1 decision *and* the
//! probabilities and regressed minutes behind it, so callers pick fields
//! instead of picking methods.
//!
//! Batch and single-row paths are numerically interchangeable: the MLP
//! forward pass is row-independent (batch-norm layers use running statistics
//! at inference), so `predict_batch` over `n` rows is bitwise identical to
//! `n` calls of `predict` — the property the serve daemon's micro-batching
//! relies on, and one the trainer's tests pin down.

use trout_linalg::Matrix;
use trout_std::json::{FromJson, Json, JsonError, ToJson};

/// Algorithm 1's decision: either "less than the cutoff" or a concrete
/// number of minutes from the regressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueEstimate {
    /// Predicted to start within the cutoff (10 minutes in the paper).
    QuickStart,
    /// Predicted queue time in minutes.
    Minutes(f32),
}

impl QueueEstimate {
    /// The user-facing message of Algorithm 1.
    pub fn message(&self, cutoff_min: f32) -> String {
        match self {
            QueueEstimate::QuickStart => {
                format!("Predicted to take less than {cutoff_min:.0} minutes")
            }
            QueueEstimate::Minutes(m) => format!("Predicted to start in {m:.0} minutes"),
        }
    }

    /// Collapses to a number for metric computation: quick starts count as
    /// half the cutoff (the class's central value).
    pub fn as_minutes(&self, cutoff_min: f32) -> f32 {
        match self {
            QueueEstimate::QuickStart => cutoff_min / 2.0,
            QueueEstimate::Minutes(m) => *m,
        }
    }
}

// Serde's externally-tagged layout by hand (the macro only covers unit
// variants): `"QuickStart"` or `{"Minutes":12.5}`. Needed so the serve
// daemon can persist drift-monitor pending joins across a crash.
impl ToJson for QueueEstimate {
    fn to_json(&self) -> Json {
        match self {
            QueueEstimate::QuickStart => Json::Str("QuickStart".to_string()),
            QueueEstimate::Minutes(m) => Json::Obj(vec![("Minutes".to_string(), m.to_json())]),
        }
    }
}

impl FromJson for QueueEstimate {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Str(s) if s == "QuickStart" => Ok(QueueEstimate::QuickStart),
            Json::Obj(_) => {
                let m = j
                    .get("Minutes")
                    .ok_or_else(|| JsonError::new("QueueEstimate: missing Minutes"))?;
                Ok(QueueEstimate::Minutes(f32::from_json(m)?))
            }
            other => Err(JsonError::new(format!(
                "invalid QueueEstimate variant: {other}"
            ))),
        }
    }
}

/// The serving priority lane a prediction request travels in.
///
/// Lanes order **scheduling**, not numerics: a prediction's value is
/// identical in every lane (row-independent inference); what changes is how
/// long the batch former may hold the request and how aggressively admission
/// control sheds it under load. `Urgent` outranks `Normal` outranks `Batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Lane {
    /// Latency-critical: preempts lane ordering at flush time, tightest
    /// default budget, smallest admission headroom.
    Urgent,
    /// The default for requests that name no lane (every v1 client).
    #[default]
    Normal,
    /// Throughput traffic: longest default budget, shed first under load.
    Batch,
}

/// Every lane, in priority order (the index is [`Lane::rank`]).
pub const LANES: [Lane; 3] = [Lane::Urgent, Lane::Normal, Lane::Batch];

impl Lane {
    /// Priority rank: 0 = urgent, 1 = normal, 2 = batch. Lower ranks are
    /// executed first at flush time and count less queued work against
    /// their budget (an urgent request only waits behind other urgents).
    pub fn rank(self) -> usize {
        match self {
            Lane::Urgent => 0,
            Lane::Normal => 1,
            Lane::Batch => 2,
        }
    }

    /// The lane with priority rank `r` (inverse of [`Lane::rank`]);
    /// `None` past the last rank. Telemetry stores lanes as compact ranks
    /// and recovers the lane here when formatting.
    pub fn from_rank(r: usize) -> Option<Lane> {
        LANES.get(r).copied()
    }

    /// The wire/protocol name.
    pub fn as_str(self) -> &'static str {
        match self {
            Lane::Urgent => "urgent",
            Lane::Normal => "normal",
            Lane::Batch => "batch",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<Lane> {
        match s {
            "urgent" => Some(Lane::Urgent),
            "normal" => Some(Lane::Normal),
            "batch" => Some(Lane::Batch),
            _ => None,
        }
    }
}

impl ToJson for Lane {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_string())
    }
}

impl FromJson for Lane {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Str(s) => {
                Lane::parse(s).ok_or_else(|| JsonError::new(format!("unknown lane `{s}`")))
            }
            other => Err(JsonError::new(format!(
                "Lane must be a string, got {other}"
            ))),
        }
    }
}

/// A latency budget: how long the requester is willing to wait for the
/// answer, end to end. The serve scheduler turns it into an absolute flush
/// deadline at admission; a request with no explicit deadline gets its
/// lane's configured default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Deadline {
    /// Budget in milliseconds (wire field `deadline_ms`).
    pub budget_ms: u64,
}

impl Deadline {
    /// A budget of `ms` milliseconds.
    pub fn ms(ms: u64) -> Deadline {
        Deadline { budget_ms: ms }
    }

    /// The budget in microseconds (scheduler arithmetic is in µs).
    pub fn as_micros(self) -> u64 {
        self.budget_ms.saturating_mul(1_000)
    }
}

/// One job's features on their way into a [`Predictor`].
#[derive(Debug, Clone, Copy)]
pub struct PredictionRequest<'a> {
    /// The scaled feature row (Table-II order).
    pub features: &'a [f32],
    /// Force the regressor to run even for predicted quick starts, so
    /// [`QueuePrediction::minutes`] is always populated. Algorithm 1 itself
    /// only regresses jobs classified as long; evaluation code that scores
    /// the regressor on *known*-long jobs needs the unconditional estimate.
    pub want_minutes: bool,
    /// Scheduling lane the request arrived in. Inference ignores it (the
    /// numerics are lane-independent); it rides along so the prediction can
    /// echo it and the serving layer can account per lane.
    pub lane: Lane,
    /// Explicit latency budget, if the requester named one (`None` = the
    /// lane's configured default applies).
    pub deadline: Option<Deadline>,
}

impl<'a> PredictionRequest<'a> {
    /// The Algorithm-1 request: regress only when classified long.
    pub fn new(features: &'a [f32]) -> PredictionRequest<'a> {
        PredictionRequest {
            features,
            want_minutes: false,
            lane: Lane::Normal,
            deadline: None,
        }
    }

    /// Requests the regressor's minutes for every job, quick or not.
    pub fn with_minutes(features: &'a [f32]) -> PredictionRequest<'a> {
        PredictionRequest {
            features,
            want_minutes: true,
            lane: Lane::Normal,
            deadline: None,
        }
    }

    /// Same request in `lane`.
    pub fn in_lane(mut self, lane: Lane) -> PredictionRequest<'a> {
        self.lane = lane;
        self
    }

    /// Same request with an explicit latency budget.
    pub fn with_deadline(mut self, deadline: Deadline) -> PredictionRequest<'a> {
        self.deadline = Some(deadline);
        self
    }
}

/// A batch of feature rows (one job per row).
#[derive(Debug, Clone, Copy)]
pub struct BatchPredictionRequest<'a> {
    /// Scaled feature matrix, `n_jobs x n_features`.
    pub features: &'a Matrix,
    /// See [`PredictionRequest::want_minutes`].
    pub want_minutes: bool,
}

impl<'a> BatchPredictionRequest<'a> {
    /// The Algorithm-1 request for every row.
    pub fn new(features: &'a Matrix) -> BatchPredictionRequest<'a> {
        BatchPredictionRequest {
            features,
            want_minutes: false,
        }
    }

    /// Requests regressed minutes for every row.
    pub fn with_minutes(features: &'a Matrix) -> BatchPredictionRequest<'a> {
        BatchPredictionRequest {
            features,
            want_minutes: true,
        }
    }
}

/// Everything a prediction consumer might want, in one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuePrediction {
    /// The Algorithm-1 decision.
    pub estimate: QueueEstimate,
    /// Raw quick-start probability (sigmoid of the classifier logit — the
    /// quantity Algorithm 1 thresholds at 0.5).
    pub quick_proba: f32,
    /// Platt-calibrated quick-start probability (equals `quick_proba` when
    /// no calibrator was fitted).
    pub calibrated_proba: f32,
    /// The regressor's queue-time estimate in minutes. Always present for
    /// jobs classified long; present for quick starts only when the request
    /// set `want_minutes`.
    pub minutes: Option<f32>,
    /// The cutoff (minutes) the decision was made against.
    pub cutoff_min: f32,
    /// The lane the request was served in, echoed back so v2 clients can
    /// correlate responses with their SLO class. Lane never changes the
    /// numerics above.
    pub lane: Lane,
}

trout_std::impl_json_struct!(QueuePrediction {
    estimate,
    quick_proba,
    calibrated_proba,
    minutes,
    cutoff_min,
    lane,
});

impl QueuePrediction {
    /// The user-facing message of Algorithm 1.
    pub fn message(&self) -> String {
        self.estimate.message(self.cutoff_min)
    }

    /// Collapses to a number for metric computation.
    pub fn as_minutes(&self) -> f32 {
        self.estimate.as_minutes(self.cutoff_min)
    }
}

/// A model that turns feature rows into [`QueuePrediction`]s — the single
/// prediction surface shared by the CLI, evaluation, benches, and the serve
/// daemon.
pub trait Predictor {
    /// The quick-start cutoff (minutes) this predictor decides against.
    fn cutoff_min(&self) -> f32;

    /// Predicts one job.
    fn predict(&self, req: PredictionRequest<'_>) -> QueuePrediction;

    /// Predicts a batch. The default delegates row by row; implementations
    /// with a cheaper batched forward pass override it (and must stay
    /// bitwise identical to the row-by-row path).
    fn predict_batch(&self, req: BatchPredictionRequest<'_>) -> Vec<QueuePrediction> {
        (0..req.features.rows())
            .map(|r| {
                self.predict(PredictionRequest {
                    features: req.features.row(r),
                    want_minutes: req.want_minutes,
                    lane: Lane::Normal,
                    deadline: None,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_follow_algorithm_1() {
        assert_eq!(
            QueueEstimate::QuickStart.message(10.0),
            "Predicted to take less than 10 minutes"
        );
        assert_eq!(
            QueueEstimate::Minutes(42.4).message(10.0),
            "Predicted to start in 42 minutes"
        );
    }

    #[test]
    fn as_minutes_collapses_quick_starts() {
        assert_eq!(QueueEstimate::QuickStart.as_minutes(10.0), 5.0);
        assert_eq!(QueueEstimate::Minutes(77.0).as_minutes(10.0), 77.0);
        let p = QueuePrediction {
            estimate: QueueEstimate::QuickStart,
            quick_proba: 0.9,
            calibrated_proba: 0.8,
            minutes: None,
            cutoff_min: 10.0,
            lane: Lane::Normal,
        };
        assert_eq!(p.as_minutes(), 5.0);
        assert_eq!(p.message(), "Predicted to take less than 10 minutes");
    }

    #[test]
    fn predictions_round_trip_through_json() {
        for p in [
            QueuePrediction {
                estimate: QueueEstimate::QuickStart,
                quick_proba: 0.9,
                calibrated_proba: 0.8,
                minutes: None,
                cutoff_min: 10.0,
                lane: Lane::Normal,
            },
            QueuePrediction {
                estimate: QueueEstimate::Minutes(123.456),
                quick_proba: 0.1,
                calibrated_proba: 0.2,
                minutes: Some(123.456),
                cutoff_min: 10.0,
                lane: Lane::Urgent,
            },
        ] {
            let back = QueuePrediction::from_json_str(&p.to_json_string()).unwrap();
            assert_eq!(back, p);
        }
        assert!(QueueEstimate::from_json_str("\"Slow\"").is_err());
    }

    #[test]
    fn lanes_rank_and_round_trip() {
        assert!(Lane::Urgent < Lane::Normal && Lane::Normal < Lane::Batch);
        for (i, lane) in LANES.iter().enumerate() {
            assert_eq!(lane.rank(), i);
            assert_eq!(Lane::parse(lane.as_str()), Some(*lane));
            let back = Lane::from_json(&lane.to_json()).unwrap();
            assert_eq!(back, *lane);
        }
        assert_eq!(Lane::default(), Lane::Normal);
        assert_eq!(Lane::parse("express"), None);
        assert!(Lane::from_json(&Json::Int(2)).is_err());
    }

    #[test]
    fn deadlines_convert_to_micros() {
        assert_eq!(Deadline::ms(50).as_micros(), 50_000);
        assert_eq!(Deadline::ms(u64::MAX).as_micros(), u64::MAX);
    }
}
