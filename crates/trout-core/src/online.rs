//! Online learning — the paper's §V future work: "future work on integrating
//! online learning capabilities is needed to ensure predictions stay current
//! with the cluster changes."
//!
//! The mechanism is warm-start fine-tuning: as freshly completed jobs arrive,
//! both networks continue training from their current weights on a sliding
//! window of recent history, at a reduced learning rate so the update refines
//! rather than forgets.

use trout_features::Dataset;
use trout_linalg::Workspace;
use trout_ml::smote::{smote_balance, SmoteConfig};

use crate::model::HierarchicalModel;
use crate::trainer::TroutConfig;

/// Persistent training workspaces for repeated online refits: one per
/// network, sized from the model's architecture and training batch size so
/// every `update_model_in` call reuses them instead of re-allocating the
/// full set of layer buffers.
#[derive(Debug)]
pub struct RefitScratch {
    classifier_ws: Workspace,
    regressor_ws: Workspace,
}

impl RefitScratch {
    /// Builds refit workspaces matching `model`'s architecture. Stays valid
    /// across refits (they never change the layer shapes).
    pub fn for_model(model: &HierarchicalModel) -> Self {
        RefitScratch {
            classifier_ws: model.classifier.fit_workspace(),
            regressor_ws: model.regressor.fit_workspace(),
        }
    }
}

/// Online-update policy.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Epochs per update.
    pub epochs: usize,
    /// Learning-rate multiplier relative to the base config (< 1 so updates
    /// refine instead of overwrite).
    pub lr_scale: f32,
    /// Sliding window: at most this many most-recent rows per update.
    pub window: usize,
    /// Serve-daemon journal fsync policy: `sync_data` the write-ahead event
    /// journal every N appends (1 = every accepted event is durable before
    /// it is acknowledged; 0 = never fsync, leave durability to the OS page
    /// cache). Lives here because it is part of the same online-operation
    /// policy surface the daemon is configured with; the journal itself is
    /// in `trout-serve`.
    pub journal_fsync_every: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            epochs: 4,
            lr_scale: 0.3,
            window: 8_000,
            journal_fsync_every: 1,
        }
    }
}

/// Applies one online update to a trained model from newly completed jobs.
///
/// `rows` are dataset row indices of the jobs observed since the last update
/// (they must be completed jobs — their queue times are the labels). The
/// update window is the tail `cfg_online.window` of them.
pub fn update_model(
    model: &mut HierarchicalModel,
    base: &TroutConfig,
    online: &OnlineConfig,
    ds: &Dataset,
    rows: &[usize],
) {
    let mut scratch = RefitScratch::for_model(model);
    update_model_in(model, base, online, ds, rows, &mut scratch);
}

/// [`update_model`] against caller-owned refit workspaces — what a serving
/// loop should call so refits under traffic stop churning the allocator.
pub fn update_model_in(
    model: &mut HierarchicalModel,
    base: &TroutConfig,
    online: &OnlineConfig,
    ds: &Dataset,
    rows: &[usize],
    scratch: &mut RefitScratch,
) {
    if rows.is_empty() {
        return;
    }
    let _span = trout_obs::span!("core.online_update");
    let take = rows.len().min(online.window);
    let window = &rows[rows.len() - take..];
    let (x, y) = ds.select(window);
    let lr = base.lr * online.lr_scale;

    // Classifier update on (re-)balanced classes.
    let labels: Vec<f32> = y
        .iter()
        .map(|&q| if q < model.cutoff_min { 1.0 } else { 0.0 })
        .collect();
    let has_both = labels.iter().any(|&l| l >= 0.5) && labels.iter().any(|&l| l < 0.5);
    if has_both {
        let (cx, cy) = if base.use_smote {
            smote_balance(
                &x,
                &labels,
                &SmoteConfig {
                    seed: base.seed ^ rows.len() as u64,
                    ..Default::default()
                },
            )
        } else {
            (x.clone(), labels)
        };
        model
            .classifier
            .fit_with_in(&cx, &cy, online.epochs, lr, &mut scratch.classifier_ws);
    }

    // Regressor update on the window's long jobs.
    let long: Vec<usize> = (0..y.len()).filter(|&i| y[i] >= model.cutoff_min).collect();
    if !long.is_empty() {
        let rx = x.select_rows(&long);
        let ry: Vec<f32> = long
            .iter()
            .map(|&i| model.target_transform.forward(y[i]))
            .collect();
        model
            .regressor
            .fit_with_in(&rx, &ry, online.epochs, lr, &mut scratch.regressor_ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{featurize, BatchPredictionRequest, Predictor, TroutTrainer};
    use trout_linalg::Matrix;
    use trout_ml::metrics;
    use trout_slurmsim::SimulationBuilder;

    fn quick_probs(model: &HierarchicalModel, x: &Matrix) -> Vec<f32> {
        model
            .predict_batch(BatchPredictionRequest::new(x))
            .into_iter()
            .map(|p| p.quick_proba)
            .collect()
    }

    #[test]
    fn online_updates_do_not_break_the_model() {
        let trace = SimulationBuilder::anvil_like().jobs(4_000).seed(14).run();
        let (ds, _) = featurize(&trace, 0.6, 1);
        let base = TroutConfig::smoke();
        let mut model =
            TroutTrainer::new(base.clone()).fit_rows(&ds, &(0..2_000).collect::<Vec<_>>());
        let online = OnlineConfig::default();
        for chunk_start in (2_000..3_600).step_by(400) {
            let rows: Vec<usize> = (chunk_start..chunk_start + 400).collect();
            update_model(&mut model, &base, &online, &ds, &rows);
        }
        // Still produces finite predictions on the most recent window.
        let tail: Vec<usize> = (3_600..4_000).collect();
        let (tx, _) = ds.select(&tail);
        for p in model.predict_batch(BatchPredictionRequest::with_minutes(&tx)) {
            let m = p.minutes.expect("want_minutes set");
            assert!(m.is_finite() && m >= 0.0);
            assert!((0.0..=1.0).contains(&p.quick_proba));
        }
    }

    #[test]
    fn online_updates_track_drift_better_than_a_frozen_model() {
        // Train both models on the first half, then stream the second half in
        // chunks; the updated model sees each chunk after predicting the next.
        let trace = SimulationBuilder::anvil_like().jobs(8_000).seed(42).run();
        let (ds, _) = featurize(&trace, 0.5, 1);
        let mut base = TroutConfig::smoke();
        base.classifier_epochs = 6;
        let train: Vec<usize> = (0..4_000).collect();
        let frozen = TroutTrainer::new(base.clone()).fit_rows(&ds, &train);
        let mut online_model = frozen.clone();
        let online = OnlineConfig {
            epochs: 3,
            lr_scale: 0.3,
            window: 4_000,
            ..Default::default()
        };

        let (mut frozen_acc, mut online_acc, mut chunks) = (0.0, 0.0, 0);
        for start in (4_000..8_000).step_by(1_000) {
            let eval_rows: Vec<usize> = (start..start + 1_000).collect();
            let (tx, ty) = ds.select(&eval_rows);
            let labels: Vec<f32> = ty
                .iter()
                .map(|&q| if q < 10.0 { 1.0 } else { 0.0 })
                .collect();
            frozen_acc += metrics::binary_accuracy(&quick_probs(&frozen, &tx), &labels);
            online_acc += metrics::binary_accuracy(&quick_probs(&online_model, &tx), &labels);
            chunks += 1;
            update_model(&mut online_model, &base, &online, &ds, &eval_rows);
        }
        let (f, o) = (frozen_acc / chunks as f64, online_acc / chunks as f64);
        // The online model must not be (meaningfully) worse; usually better.
        assert!(o >= f - 0.03, "online {o:.3} vs frozen {f:.3}");
    }

    #[test]
    fn empty_update_is_a_no_op() {
        let trace = SimulationBuilder::anvil_like().jobs(2_500).seed(14).run();
        let (ds, _) = featurize(&trace, 0.6, 1);
        let base = TroutConfig::smoke();
        let mut model = TroutTrainer::new(base.clone()).fit(&ds);
        let before = model.to_json();
        update_model(&mut model, &base, &OnlineConfig::default(), &ds, &[]);
        assert_eq!(model.to_json(), before);
    }
}
