//! Hyper-parameter tuning for the hierarchical model — the Optuna stage of
//! the paper's pipeline (§III: "the Optuna hyperparameter framework was used
//! to determine the best combination of hyperparameters", searching learning
//! rate, epochs, layer count and sizes, dropout and activation).
//!
//! The tuner wraps [`trout_ml::hpo`]'s random search / successive halving
//! around the regressor's time-series-validation MAPE. Scores are computed on
//! *earlier* folds than the ones reported in the evaluation, preserving the
//! paper's no-future-information discipline.

use trout_features::Dataset;
use trout_ml::cv::TimeSeriesSplit;
use trout_ml::hpo::{successive_halving, tpe_search, Param, SearchResult, TpeConfig, TrialParams};
use trout_ml::metrics;
use trout_ml::nn::Activation;

use crate::predictor::Predictor;
use crate::trainer::{TroutConfig, TroutTrainer};

/// Which search algorithm drives the tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampler {
    /// Random sampling with successive-halving pruning (cheap screen on
    /// fold 2, survivors re-scored on folds 2–3).
    SuccessiveHalving,
    /// Tree-structured Parzen Estimator — Optuna's default sampler.
    Tpe,
}

/// Tuning budget and scope.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Candidate configurations sampled.
    pub n_trials: usize,
    /// Fraction surviving the cheap screen into the full evaluation
    /// (successive halving only).
    pub keep_fraction: f64,
    /// Seed for the search.
    pub seed: u64,
    /// Search algorithm.
    pub sampler: Sampler,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            n_trials: 24,
            keep_fraction: 0.25,
            seed: 0,
            sampler: Sampler::SuccessiveHalving,
        }
    }
}

/// The search space the paper describes: learning rate, epochs, hidden depth
/// and widths, dropout, activation.
fn search_space() -> Vec<Param> {
    vec![
        Param::LogFloat {
            name: "lr",
            lo: 2e-4,
            hi: 5e-3,
        },
        Param::Int {
            name: "epochs",
            lo: 20,
            hi: 60,
        },
        Param::Int {
            name: "depth",
            lo: 2,
            hi: 4,
        },
        Param::Int {
            name: "width",
            lo: 48,
            hi: 160,
        },
        Param::Float {
            name: "dropout",
            lo: 0.0,
            hi: 0.3,
        },
        Param::Choice {
            name: "activation",
            n: 3,
        }, // ELU / ReLU / tanh
        Param::Choice {
            name: "batch",
            n: 3,
        }, // 128 / 256 / 512
    ]
}

/// Materializes a [`TroutConfig`] from a sampled trial.
pub fn config_from_trial(base: &TroutConfig, p: &TrialParams) -> TroutConfig {
    let mut cfg = base.clone();
    cfg.lr = p.get("lr") as f32;
    cfg.regressor_epochs = p.get_usize("epochs");
    let depth = p.get_usize("depth");
    let width = p.get_usize("width");
    // Tapering widths: e.g. depth 3, width 96 -> [96, 64, 43].
    cfg.regressor_hidden = (0..depth)
        .map(|d| ((width as f64) * 0.67f64.powi(d as i32)) as usize)
        .collect();
    cfg.dropout = p.get("dropout") as f32;
    cfg.activation = match p.get_usize("activation") {
        0 => Activation::ELU,
        1 => Activation::Relu,
        _ => Activation::Tanh,
    };
    cfg.batch_size = [128, 256, 512][p.get_usize("batch")];
    cfg
}

/// The regressor's mean MAPE over the validation folds `val_folds`
/// (1-based fold numbers of the paper's 5-fold split).
fn regressor_score(cfg: &TroutConfig, ds: &Dataset, val_folds: &[usize]) -> f64 {
    let folds = TimeSeriesSplit {
        n_splits: 5,
        test_size: Some(ds.len() / 6),
    }
    .split(ds.len());
    let trainer = TroutTrainer::new(cfg.clone());
    let mut total = 0.0;
    let mut k = 0usize;
    for (i, fold) in folds.iter().enumerate() {
        if !val_folds.contains(&(i + 1)) {
            continue;
        }
        let train_long = fold
            .train
            .iter()
            .any(|&r| ds.y_queue_min[r] >= cfg.cutoff_min);
        let test_long: Vec<usize> = fold
            .test
            .iter()
            .copied()
            .filter(|&r| ds.y_queue_min[r] >= cfg.cutoff_min)
            .collect();
        if !train_long || test_long.is_empty() {
            continue;
        }
        let model = trainer.fit_rows(ds, &fold.train);
        let (lx, lys) = ds.select(&test_long);
        let preds: Vec<f32> = model
            .predict_batch(crate::BatchPredictionRequest::with_minutes(&lx))
            .into_iter()
            .map(|p| p.minutes.expect("want_minutes set"))
            .collect();
        total += metrics::mape(&preds, &lys);
        k += 1;
    }
    if k == 0 {
        f64::INFINITY
    } else {
        total / k as f64
    }
}

/// Runs the search. For successive halving, cheap screens score on fold 2
/// only and survivors are scored on folds 2 and 3; TPE scores every trial on
/// folds 2–3. The reported evaluation folds (4–5) are never touched.
pub fn tune_regressor(
    base: &TroutConfig,
    ds: &Dataset,
    tuner: &TunerConfig,
) -> (TroutConfig, SearchResult) {
    let result = match tuner.sampler {
        Sampler::SuccessiveHalving => successive_halving(
            &search_space(),
            tuner.n_trials,
            tuner.keep_fraction,
            tuner.seed,
            |params, full| {
                let _span = trout_obs::span!("core.tune_trial");
                let mut cfg = config_from_trial(base, params);
                if !full {
                    // Cheap screen: half the epochs, single validation fold.
                    cfg.regressor_epochs = (cfg.regressor_epochs / 2).max(5);
                    regressor_score(&cfg, ds, &[2])
                } else {
                    regressor_score(&cfg, ds, &[2, 3])
                }
            },
        ),
        Sampler::Tpe => tpe_search(
            &search_space(),
            tuner.n_trials,
            tuner.seed,
            &TpeConfig::default(),
            |params| {
                let _span = trout_obs::span!("core.tune_trial");
                let cfg = config_from_trial(base, params);
                regressor_score(&cfg, ds, &[2, 3])
            },
        ),
    };
    (config_from_trial(base, &result.best), result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trout_features::FeaturePipeline;
    use trout_slurmsim::SimulationBuilder;

    #[test]
    fn trial_materialization_covers_the_space() {
        let base = TroutConfig::smoke();
        let space = search_space();
        // Sample a bunch of trials through the public path and check bounds.
        let result = trout_ml::hpo::random_search(&space, 40, 3, |p| {
            let cfg = config_from_trial(&base, p);
            assert!((2e-4..=5e-3).contains(&(cfg.lr as f64)));
            assert!((20..=60).contains(&cfg.regressor_epochs));
            assert!((2..=4).contains(&cfg.regressor_hidden.len()));
            assert!(
                cfg.regressor_hidden.windows(2).all(|w| w[1] <= w[0]),
                "widths taper"
            );
            assert!((0.0..0.31).contains(&cfg.dropout));
            assert!([128, 256, 512].contains(&cfg.batch_size));
            0.0
        });
        assert_eq!(result.history.len(), 40);
    }

    #[test]
    fn tuner_runs_end_to_end_on_a_tiny_budget() {
        let trace = SimulationBuilder::anvil_like().jobs(2_500).seed(14).run();
        let ds = FeaturePipeline::standard().build(&trace);
        let mut base = TroutConfig::smoke();
        base.classifier_epochs = 2;
        let (best_cfg, result) = tune_regressor(
            &base,
            &ds,
            &TunerConfig {
                n_trials: 4,
                keep_fraction: 0.5,
                seed: 1,
                ..Default::default()
            },
        );
        assert!(result.best_score.is_finite());
        assert_eq!(
            result.history.len(),
            2,
            "survivors re-scored at full budget"
        );
        assert!(!best_cfg.regressor_hidden.is_empty());
    }
}

#[cfg(test)]
mod tpe_tuner_tests {
    use super::*;
    use trout_features::FeaturePipeline;
    use trout_slurmsim::SimulationBuilder;

    #[test]
    fn tpe_sampler_runs_end_to_end() {
        let trace = SimulationBuilder::anvil_like().jobs(2_500).seed(14).run();
        let ds = FeaturePipeline::standard().build(&trace);
        let mut base = TroutConfig::smoke();
        base.classifier_epochs = 2;
        let (best_cfg, result) = tune_regressor(
            &base,
            &ds,
            &TunerConfig {
                n_trials: 3,
                keep_fraction: 0.5,
                seed: 2,
                sampler: Sampler::Tpe,
            },
        );
        assert_eq!(result.history.len(), 3);
        assert!(result.best_score.is_finite());
        assert!(!best_cfg.regressor_hidden.is_empty());
    }
}
