//! The runtime-prediction random forest.
//!
//! "Some previous studies have also included a separate model for predicting
//! the runtime of existing jobs, and they have used the output of this model
//! as a feature for the final wait time prediction model" (§II); the paper
//! adopts this with a deliberately "basic" random forest. Inputs are the
//! request-time fields only (never anything observed after start); the target
//! is the actual runtime in minutes.

use trout_linalg::Matrix;
use trout_ml::tree::{RandomForest, RandomForestConfig};
use trout_slurmsim::{JobRecord, Trace};

/// Input width of the runtime model.
const RT_FEATURES: usize = 7;

/// A fitted runtime model.
#[derive(Debug, Clone)]
pub struct RuntimePredictor {
    forest: RandomForest,
}

trout_std::impl_json_struct!(RuntimePredictor { forest });

fn runtime_features(r: &JobRecord) -> [f32; RT_FEATURES] {
    [
        r.timelimit_min as f32,
        r.req_cpus as f32,
        r.req_mem_gb as f32,
        r.req_nodes as f32,
        r.req_gpus as f32,
        r.partition as f32,
        r.qos.factor() as f32,
    ]
}

fn feature_matrix(records: &[JobRecord]) -> Matrix {
    let mut data = Vec::with_capacity(records.len() * RT_FEATURES);
    for r in records {
        data.extend_from_slice(&runtime_features(r));
    }
    Matrix::from_vec(records.len(), RT_FEATURES, data)
}

impl RuntimePredictor {
    /// Fits on the leading `train_frac` of the trace — the oldest jobs — so
    /// runtime features computed for newer jobs never peek at their own era.
    ///
    /// # Panics
    ///
    /// Panics if the prefix is empty.
    pub fn fit_on_prefix(trace: &Trace, train_frac: f64, seed: u64) -> RuntimePredictor {
        // Cancelled jobs never ran, so they carry no runtime label. Filter
        // them out *before* taking the training prefix: slicing first would
        // shrink the effective training set below `train_frac` on
        // cancellation-heavy traces (and could leave it empty).
        let started: Vec<&JobRecord> = trace
            .records
            .iter()
            .filter(|r| r.state != trout_slurmsim::JobState::Cancelled)
            .collect();
        let n_train = ((started.len() as f64 * train_frac) as usize).clamp(1, started.len().max(1));
        let records: Vec<JobRecord> = started[..n_train.min(started.len())]
            .iter()
            .map(|r| (*r).clone())
            .collect();
        assert!(
            !records.is_empty(),
            "no started jobs in the training prefix"
        );
        let x = feature_matrix(&records);
        let y: Vec<f32> = records.iter().map(|r| r.runtime_min() as f32).collect();
        let cfg = RandomForestConfig {
            n_trees: 40,
            max_depth: 10,
            min_samples_leaf: 5,
            seed,
            ..Default::default()
        };
        RuntimePredictor {
            forest: RandomForest::fit(&x, &y, &cfg),
        }
    }

    /// Predicted runtime (minutes) for one record, clamped to
    /// `[0, timelimit]` — a job cannot run past its limit.
    pub fn predict(&self, r: &JobRecord) -> f64 {
        let f = runtime_features(r);
        (self.forest.predict_row(&f) as f64).clamp(0.0, r.timelimit_min as f64)
    }

    /// Predictions for every record of a trace.
    pub fn predict_all(&self, trace: &Trace) -> Vec<f64> {
        trace.records.iter().map(|r| self.predict(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trout_slurmsim::SimulationBuilder;

    #[test]
    fn predictions_beat_the_timelimit_baseline() {
        // Users overestimate badly (mean usage ~15 % of request), so even a
        // basic model should out-predict "assume the job uses its limit".
        let trace = SimulationBuilder::anvil_like().jobs(3_000).seed(11).run();
        let model = RuntimePredictor::fit_on_prefix(&trace, 0.6, 1);
        let test = &trace.records[1_800..];
        let (mut err_model, mut err_limit) = (0.0f64, 0.0f64);
        for r in test {
            let truth = r.runtime_min();
            err_model += (model.predict(r) - truth).abs();
            err_limit += (r.timelimit_min as f64 - truth).abs();
        }
        assert!(
            err_model < 0.7 * err_limit,
            "runtime RF ({err_model:.0}) should clearly beat the limit baseline ({err_limit:.0})"
        );
    }

    #[test]
    fn predictions_respect_the_limit() {
        let trace = SimulationBuilder::anvil_like().jobs(800).seed(2).run();
        let model = RuntimePredictor::fit_on_prefix(&trace, 0.5, 3);
        for r in &trace.records {
            let p = model.predict(r);
            assert!(
                p >= 0.0 && p <= r.timelimit_min as f64,
                "{p} vs limit {}",
                r.timelimit_min
            );
        }
    }

    #[test]
    fn cancellations_filtered_before_prefix_slice() {
        // Make the leading half of the trace entirely cancelled. Slicing the
        // prefix first would leave zero training jobs; filtering first must
        // still find the started jobs further down the trace.
        let mut trace = SimulationBuilder::anvil_like().jobs(600).seed(6).run();
        for r in trace.records.iter_mut().take(300) {
            r.state = trout_slurmsim::JobState::Cancelled;
            r.end_time = r.start_time;
        }
        let model = RuntimePredictor::fit_on_prefix(&trace, 0.5, 1);
        for p in model.predict_all(&trace) {
            assert!(p.is_finite() && p >= 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = SimulationBuilder::anvil_like().jobs(500).seed(4).run();
        let a = RuntimePredictor::fit_on_prefix(&trace, 0.6, 9).predict_all(&trace);
        let b = RuntimePredictor::fit_on_prefix(&trace, 0.6, 9).predict_all(&trace);
        assert_eq!(a, b);
    }
}
