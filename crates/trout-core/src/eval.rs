//! The paper's evaluation protocol: time-series folds, per-fold metrics, and
//! the four-model comparison behind Figs. 6–9.

use trout_features::Dataset;
use trout_linalg::Matrix;
use trout_ml::cv::TimeSeriesSplit;
use trout_ml::knn::{KnnConfig, KnnRegressor};
use trout_ml::metrics;
use trout_ml::tree::{Gbt, GbtConfig, Objective, RandomForest, RandomForestConfig};

use crate::predictor::{BatchPredictionRequest, Predictor};
use crate::trainer::{TroutConfig, TroutTrainer};

/// Per-fold metrics of the hierarchical model, matching §IV's reporting:
/// classifier accuracy on the fold's test window, regressor MAPE / Pearson r
/// / within-100 % on the test jobs that truly queued past the cutoff.
#[derive(Debug, Clone)]
pub struct FoldReport {
    /// Fold number (1-based, as the paper counts).
    pub fold: usize,
    /// Training rows.
    pub n_train: usize,
    /// Test rows.
    pub n_test: usize,
    /// Test rows with true queue time >= cutoff (regression population).
    pub n_long_test: usize,
    /// Classifier binary accuracy over the whole test window.
    pub classifier_accuracy: f64,
    /// Per-class accuracy (long, quick).
    pub class_accuracy: (f64, f64),
    /// Regressor mean absolute percentage error on long test jobs.
    pub regressor_mape: f64,
    /// Pearson r between predicted and actual queue times (long test jobs).
    pub pearson_r: f64,
    /// Fraction of long-test predictions within 100 % error.
    pub within_100: f64,
    /// Predicted/actual pairs (minutes) for scatter plots (Figs. 4–5).
    pub scatter: Vec<(f32, f32)>,
}

/// Runs the paper's 5-fold (configurable) time-series evaluation of the
/// hierarchical model.
pub fn evaluate_folds(cfg: &TroutConfig, ds: &Dataset, n_splits: usize) -> Vec<FoldReport> {
    let splitter = TimeSeriesSplit {
        n_splits,
        test_size: Some(ds.len() / 6),
    };
    let trainer = TroutTrainer::new(cfg.clone());
    let mut reports = Vec::with_capacity(n_splits);
    for (f, fold) in splitter.split(ds.len()).into_iter().enumerate() {
        let model = trainer.fit_rows(ds, &fold.train);
        let (tx, ty) = ds.select(&fold.test);

        // One batched pass yields the classifier probabilities for the whole
        // test window and the regressor's minutes for every row.
        let predictions = model.predict_batch(BatchPredictionRequest::with_minutes(&tx));
        let probs: Vec<f32> = predictions.iter().map(|p| p.quick_proba).collect();
        let labels: Vec<f32> = ty
            .iter()
            .map(|&q| if q < cfg.cutoff_min { 1.0 } else { 0.0 })
            .collect();
        let classifier_accuracy = metrics::binary_accuracy(&probs, &labels);
        let class_accuracy = metrics::per_class_accuracy(&probs, &labels);

        // Regressor over the truly-long test jobs.
        let long_idx: Vec<usize> = (0..ty.len()).filter(|&i| ty[i] >= cfg.cutoff_min).collect();
        let lys: Vec<f32> = long_idx.iter().map(|&i| ty[i]).collect();
        let preds: Vec<f32> = long_idx
            .iter()
            .map(|&i| predictions[i].minutes.expect("want_minutes set"))
            .collect();
        reports.push(FoldReport {
            fold: f + 1,
            n_train: fold.train.len(),
            n_test: fold.test.len(),
            n_long_test: long_idx.len(),
            classifier_accuracy,
            class_accuracy,
            regressor_mape: metrics::mape(&preds, &lys),
            pearson_r: metrics::pearson_r(&preds, &lys),
            within_100: metrics::fraction_within_pct(&preds, &lys, 100.0),
            scatter: preds.into_iter().zip(lys).collect(),
        });
    }
    reports
}

/// Rolling mean absolute error in minutes — the offline counterpart of the
/// serve drift monitor's `serve.drift.mae_min` gauge. Both accumulate
/// `|pred - actual|` as `f64` in pair order and divide by the count once, so
/// a served replay and this function agree **bit-for-bit** on the same
/// prediction/outcome pairs (the e2e drift test relies on that).
pub fn rolling_mae(preds: &[f32], actuals: &[f32]) -> f64 {
    metrics::mae(preds, actuals)
}

/// Fraction of predictions within 2x of the outcome (strictly under 100 %
/// relative error, denominator clamped to one minute) — the offline
/// counterpart of the drift monitor's `serve.drift.within_2x` gauge.
pub fn within_2x_fraction(preds: &[f32], actuals: &[f32]) -> f64 {
    metrics::fraction_within_pct(preds, actuals, 100.0)
}

/// The four regression models of Figs. 6–9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineModel {
    /// TROUT's neural-network regressor.
    NeuralNet,
    /// Gradient-boosted trees (the XGBoost baseline).
    Xgboost,
    /// Random forest.
    RandomForest,
    /// k-nearest neighbours.
    Knn,
}

impl BaselineModel {
    /// All four, in the paper's reporting order.
    pub const ALL: [BaselineModel; 4] = [
        BaselineModel::NeuralNet,
        BaselineModel::Xgboost,
        BaselineModel::RandomForest,
        BaselineModel::Knn,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineModel::NeuralNet => "Neural Net",
            BaselineModel::Xgboost => "XGBoost",
            BaselineModel::RandomForest => "Random Forest",
            BaselineModel::Knn => "kNN",
        }
    }
}

/// One model's metrics on one fold's long-job regression task.
#[derive(Debug, Clone)]
pub struct ComparisonEntry {
    /// Which model.
    pub model: BaselineModel,
    /// Fold number (1-based).
    pub fold: usize,
    /// Mean absolute percentage error.
    pub mape: f64,
    /// Fraction within 100 % error.
    pub within_100: f64,
    /// Pearson r.
    pub pearson_r: f64,
}

/// Trains every requested model on the same long-job folds and targets —
/// "All models were trained on the same data and split with the same
/// features" (§IV). All models see the same target transform from `cfg`.
pub fn compare_models(
    cfg: &TroutConfig,
    ds: &Dataset,
    n_splits: usize,
    which: &[BaselineModel],
) -> Vec<ComparisonEntry> {
    let splitter = TimeSeriesSplit {
        n_splits,
        test_size: Some(ds.len() / 6),
    };
    let mut out = Vec::new();
    for (f, fold) in splitter.split(ds.len()).into_iter().enumerate() {
        // Long-job subsets on both sides of the split.
        let train_long: Vec<usize> = fold
            .train
            .iter()
            .copied()
            .filter(|&i| ds.y_queue_min[i] >= cfg.cutoff_min)
            .collect();
        let test_long: Vec<usize> = fold
            .test
            .iter()
            .copied()
            .filter(|&i| ds.y_queue_min[i] >= cfg.cutoff_min)
            .collect();
        if train_long.is_empty() || test_long.is_empty() {
            continue;
        }
        let (tx, ty_raw) = ds.select(&train_long);
        let ty: Vec<f32> = ty_raw
            .iter()
            .map(|&v| cfg.target_transform.forward(v))
            .collect();
        let (ex, ey) = ds.select(&test_long);

        for &model in which {
            let preds = train_predict(model, cfg, &tx, &ty, &ex, ds, &fold.train, f as u64);
            let preds: Vec<f32> = preds
                .into_iter()
                .map(|p| cfg.target_transform.inverse(p).max(0.0))
                .collect();
            out.push(ComparisonEntry {
                model,
                fold: f + 1,
                mape: metrics::mape(&preds, &ey),
                within_100: metrics::fraction_within_pct(&preds, &ey, 100.0),
                pearson_r: metrics::pearson_r(&preds, &ey),
            });
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn train_predict(
    model: BaselineModel,
    cfg: &TroutConfig,
    tx: &Matrix,
    ty: &[f32],
    ex: &Matrix,
    ds: &Dataset,
    train_rows: &[usize],
    fold_seed: u64,
) -> Vec<f32> {
    match model {
        BaselineModel::NeuralNet => {
            // Use the full hierarchical trainer's regressor stage by training
            // on the fold's entire window (it selects long jobs itself), then
            // emit raw-space predictions to share the common inverse below.
            let trained = TroutTrainer::new(cfg.clone()).fit_rows(ds, train_rows);
            trained
                .predict_batch(BatchPredictionRequest::with_minutes(ex))
                .into_iter()
                .map(|p| {
                    cfg.target_transform
                        .forward(p.minutes.expect("want_minutes set"))
                })
                .collect()
        }
        BaselineModel::Xgboost => {
            let gcfg = GbtConfig {
                n_rounds: 100,
                max_depth: 6,
                learning_rate: 0.1,
                lambda: 1.0,
                objective: Objective::SquaredError,
                seed: cfg.seed ^ fold_seed,
                ..Default::default()
            };
            Gbt::fit(tx, ty, &gcfg).predict(ex)
        }
        BaselineModel::RandomForest => {
            let rcfg = RandomForestConfig {
                n_trees: 100,
                max_depth: 12,
                seed: cfg.seed ^ fold_seed,
                ..Default::default()
            };
            RandomForest::fit(tx, ty, &rcfg).predict(ex)
        }
        BaselineModel::Knn => {
            let kcfg = KnnConfig {
                k: 10,
                seed: cfg.seed ^ fold_seed,
                ..Default::default()
            };
            KnnRegressor::fit(tx, ty, &kcfg).predict(ex)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trout_features::FeaturePipeline;
    use trout_slurmsim::SimulationBuilder;

    fn dataset(jobs: usize) -> Dataset {
        let trace = SimulationBuilder::anvil_like().jobs(jobs).seed(14).run();
        FeaturePipeline::standard().build(&trace)
    }

    #[test]
    fn fold_reports_have_paper_shape() {
        let ds = dataset(3_000);
        let mut cfg = TroutConfig::smoke();
        cfg.classifier_epochs = 6;
        cfg.regressor_epochs = 8;
        let reports = evaluate_folds(&cfg, &ds, 3);
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.n_train > 0 && r.n_test > 0);
            assert!((0.0..=1.0).contains(&r.classifier_accuracy));
            assert!(r.regressor_mape.is_finite());
            assert!((-1.0..=1.0).contains(&r.pearson_r));
            assert_eq!(r.scatter.len(), r.n_long_test);
        }
        // Expanding windows: later folds train on strictly more data.
        assert!(reports[2].n_train > reports[0].n_train);
    }

    #[test]
    fn comparison_covers_requested_models_per_fold() {
        let ds = dataset(2_400);
        let mut cfg = TroutConfig::smoke();
        cfg.regressor_epochs = 5;
        let entries = compare_models(&cfg, &ds, 2, &[BaselineModel::Xgboost, BaselineModel::Knn]);
        assert_eq!(entries.len(), 4, "2 models x 2 folds");
        for e in &entries {
            assert!(e.mape.is_finite() && e.mape >= 0.0);
            assert!((0.0..=1.0).contains(&e.within_100));
        }
    }

    #[test]
    fn xgboost_beats_a_constant_predictor() {
        let ds = dataset(2_400);
        let cfg = TroutConfig::smoke();
        let entries = compare_models(&cfg, &ds, 2, &[BaselineModel::Xgboost]);
        // Constant predictor: the training-long-jobs median, evaluated on the
        // same folds' long test jobs.
        let folds = TimeSeriesSplit {
            n_splits: 2,
            test_size: Some(ds.len() / 6),
        }
        .split(ds.len());
        let mut const_mape = Vec::new();
        for fold in folds {
            let mut train_y: Vec<f32> = fold
                .train
                .iter()
                .filter(|&&i| ds.y_queue_min[i] >= cfg.cutoff_min)
                .map(|&i| ds.y_queue_min[i])
                .collect();
            let test_y: Vec<f32> = fold
                .test
                .iter()
                .filter(|&&i| ds.y_queue_min[i] >= cfg.cutoff_min)
                .map(|&i| ds.y_queue_min[i])
                .collect();
            if train_y.is_empty() || test_y.is_empty() {
                continue;
            }
            train_y.sort_by(f32::total_cmp);
            let med = train_y[train_y.len() / 2];
            let preds = vec![med; test_y.len()];
            const_mape.push(metrics::mape(&preds, &test_y));
        }
        let mean_model: f64 = entries.iter().map(|e| e.mape).sum::<f64>() / entries.len() as f64;
        let mean_const: f64 = const_mape.iter().sum::<f64>() / const_mape.len() as f64;
        assert!(
            mean_model < mean_const,
            "XGBoost mape {mean_model:.1}% should beat constant {mean_const:.1}%"
        );
    }

    #[test]
    fn model_names_are_distinct() {
        let names: Vec<&str> = BaselineModel::ALL.iter().map(|m| m.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
