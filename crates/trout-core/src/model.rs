//! The hierarchical model and Algorithm 1 inference.

use trout_linalg::{ops::sigmoid, Matrix};
use trout_ml::calibration::PlattScaler;
use trout_ml::nn::Mlp;

use crate::trainer::TargetTransform;

/// Algorithm 1's output: either "less than the cutoff" or a concrete number
/// of minutes from the regressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueuePrediction {
    /// Predicted to start within the cutoff (10 minutes in the paper).
    QuickStart,
    /// Predicted queue time in minutes.
    Minutes(f32),
}

impl QueuePrediction {
    /// The user-facing message of Algorithm 1.
    pub fn message(&self, cutoff_min: f32) -> String {
        match self {
            QueuePrediction::QuickStart => {
                format!("Predicted to take less than {cutoff_min:.0} minutes")
            }
            QueuePrediction::Minutes(m) => format!("Predicted to start in {m:.0} minutes"),
        }
    }

    /// Collapses to a number for metric computation: quick starts count as
    /// half the cutoff (the class's central value).
    pub fn as_minutes(&self, cutoff_min: f32) -> f32 {
        match self {
            QueuePrediction::QuickStart => cutoff_min / 2.0,
            QueuePrediction::Minutes(m) => *m,
        }
    }
}

/// The trained two-stage system: quick-start classifier + queue regressor.
#[derive(Debug, Clone)]
pub struct HierarchicalModel {
    /// Quick-start cutoff in minutes (10 in the paper).
    pub cutoff_min: f32,
    pub(crate) classifier: Mlp,
    pub(crate) regressor: Mlp,
    pub(crate) target_transform: TargetTransform,
    /// Platt scaler fitted on a held-out slice so the SMOTE-trained
    /// classifier's outputs read as real probabilities. Decisions
    /// (Algorithm 1) still threshold the raw logit at 0.5, as the paper
    /// does; calibration only affects the reported confidence.
    pub(crate) calibrator: Option<PlattScaler>,
}

trout_std::impl_json_struct!(HierarchicalModel {
    cutoff_min,
    classifier,
    regressor,
    target_transform,
    calibrator
});

impl HierarchicalModel {
    /// Algorithm 1 for one feature row: classify, and only if the job is
    /// predicted to exceed the cutoff, regress a concrete queue time.
    pub fn predict(&self, features: &[f32]) -> QueuePrediction {
        let quick_logit = self.classifier.predict_one(features);
        // The classifier is trained with label 1 = quick start.
        if sigmoid(quick_logit) >= 0.5 {
            QueuePrediction::QuickStart
        } else {
            QueuePrediction::Minutes(self.regress_minutes(features))
        }
    }

    /// Batch version of [`HierarchicalModel::predict`].
    pub fn predict_batch(&self, x: &Matrix) -> Vec<QueuePrediction> {
        let probs = self.classifier.predict_proba(x);
        let mut out = Vec::with_capacity(x.rows());
        for (r, &p) in probs.iter().enumerate() {
            if p >= 0.5 {
                out.push(QueuePrediction::QuickStart);
            } else {
                out.push(QueuePrediction::Minutes(self.regress_minutes(x.row(r))));
            }
        }
        out
    }

    /// Probability the job starts within the cutoff (raw sigmoid of the
    /// classifier logit — the quantity Algorithm 1 thresholds).
    pub fn quick_start_proba(&self, features: &[f32]) -> f32 {
        sigmoid(self.classifier.predict_one(features))
    }

    /// Quick-start probabilities for a batch.
    pub fn quick_start_proba_batch(&self, x: &Matrix) -> Vec<f32> {
        self.classifier.predict_proba(x)
    }

    /// Calibrated quick-start probability (Platt-scaled; falls back to the
    /// raw sigmoid when no calibrator was fitted).
    pub fn calibrated_quick_proba(&self, features: &[f32]) -> f32 {
        let logit = self.classifier.predict_one(features);
        match &self.calibrator {
            Some(c) => c.calibrate(logit),
            None => sigmoid(logit),
        }
    }

    /// Calibrated probabilities for a batch.
    pub fn calibrated_quick_proba_batch(&self, x: &Matrix) -> Vec<f32> {
        let logits = self.classifier.predict(x);
        match &self.calibrator {
            Some(c) => c.calibrate_batch(&logits),
            None => logits.into_iter().map(sigmoid).collect(),
        }
    }

    /// The regressor's raw queue-time estimate in minutes (ignores the
    /// classifier stage; used when evaluating the regressor on known-long
    /// jobs as the paper does).
    pub fn regress_minutes(&self, features: &[f32]) -> f32 {
        let raw = self.regressor.predict_one(features);
        self.target_transform.inverse(raw).max(0.0)
    }

    /// Batch version of [`HierarchicalModel::regress_minutes`].
    pub fn regress_minutes_batch(&self, x: &Matrix) -> Vec<f32> {
        self.regressor
            .predict(x)
            .into_iter()
            .map(|raw| self.target_transform.inverse(raw).max(0.0))
            .collect()
    }

    /// Serializes to JSON (the CLI checkpoint format).
    pub fn to_json(&self) -> String {
        trout_std::json::ToJson::to_json_string(self)
    }

    /// Loads a JSON checkpoint.
    pub fn from_json(json: &str) -> Result<HierarchicalModel, trout_std::json::JsonError> {
        trout_std::json::FromJson::from_json_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_follow_algorithm_1() {
        assert_eq!(
            QueuePrediction::QuickStart.message(10.0),
            "Predicted to take less than 10 minutes"
        );
        assert_eq!(
            QueuePrediction::Minutes(42.4).message(10.0),
            "Predicted to start in 42 minutes"
        );
    }

    #[test]
    fn as_minutes_collapses_quick_starts() {
        assert_eq!(QueuePrediction::QuickStart.as_minutes(10.0), 5.0);
        assert_eq!(QueuePrediction::Minutes(77.0).as_minutes(10.0), 77.0);
    }
}
