//! The hierarchical model and Algorithm 1 inference.

use trout_linalg::ops::sigmoid;
use trout_ml::calibration::PlattScaler;
use trout_ml::nn::Mlp;

use crate::predictor::{
    BatchPredictionRequest, PredictionRequest, Predictor, QueueEstimate, QueuePrediction,
};
use crate::trainer::TargetTransform;

/// The trained two-stage system: quick-start classifier + queue regressor.
/// All inference goes through the [`Predictor`] impl.
#[derive(Debug, Clone)]
pub struct HierarchicalModel {
    /// Quick-start cutoff in minutes (10 in the paper).
    pub cutoff_min: f32,
    pub(crate) classifier: Mlp,
    pub(crate) regressor: Mlp,
    pub(crate) target_transform: TargetTransform,
    /// Platt scaler fitted on a held-out slice so the SMOTE-trained
    /// classifier's outputs read as real probabilities. Decisions
    /// (Algorithm 1) still threshold the raw logit at 0.5, as the paper
    /// does; calibration only affects the reported confidence.
    pub(crate) calibrator: Option<PlattScaler>,
}

trout_std::impl_json_struct!(HierarchicalModel {
    cutoff_min,
    classifier,
    regressor,
    target_transform,
    calibrator
});

impl HierarchicalModel {
    /// The regressor's raw queue-time estimate for one row.
    fn regress_one(&self, features: &[f32]) -> f32 {
        let raw = self.regressor.predict_one(features);
        self.target_transform.inverse(raw).max(0.0)
    }

    /// Serializes to JSON (the CLI checkpoint format).
    pub fn to_json(&self) -> String {
        trout_std::json::ToJson::to_json_string(self)
    }

    /// Loads a JSON checkpoint.
    pub fn from_json(json: &str) -> Result<HierarchicalModel, trout_std::json::JsonError> {
        trout_std::json::FromJson::from_json_str(json)
    }
}

impl Predictor for HierarchicalModel {
    fn cutoff_min(&self) -> f32 {
        self.cutoff_min
    }

    /// Algorithm 1 for one feature row: classify, and only if the job is
    /// predicted to exceed the cutoff (or the request insists), regress a
    /// concrete queue time.
    fn predict(&self, req: PredictionRequest<'_>) -> QueuePrediction {
        let logit = self.classifier.predict_one(req.features);
        let quick_proba = sigmoid(logit);
        let calibrated_proba = match &self.calibrator {
            Some(c) => c.calibrate(logit),
            None => quick_proba,
        };
        let quick = quick_proba >= 0.5;
        let minutes = if !quick || req.want_minutes {
            Some(self.regress_one(req.features))
        } else {
            None
        };
        QueuePrediction {
            estimate: if quick {
                QueueEstimate::QuickStart
            } else {
                QueueEstimate::Minutes(minutes.expect("regressed above"))
            },
            quick_proba,
            calibrated_proba,
            minutes,
            cutoff_min: self.cutoff_min,
        }
    }

    /// Batched Algorithm 1: one classifier pass over the whole matrix, one
    /// regressor pass over the rows that need it. Bitwise identical to the
    /// row-by-row path because MLP inference is row-independent.
    fn predict_batch(&self, req: BatchPredictionRequest<'_>) -> Vec<QueuePrediction> {
        let x = req.features;
        let logits = self.classifier.predict(x);
        let probs: Vec<f32> = logits.iter().map(|&l| sigmoid(l)).collect();
        let calibrated: Vec<f32> = match &self.calibrator {
            Some(c) => c.calibrate_batch(&logits),
            None => probs.clone(),
        };

        // Rows the regressor must see: classified-long always, all rows when
        // the request wants unconditional minutes.
        let regress_rows: Vec<usize> = (0..x.rows())
            .filter(|&r| probs[r] < 0.5 || req.want_minutes)
            .collect();
        let mut minutes: Vec<Option<f32>> = vec![None; x.rows()];
        if !regress_rows.is_empty() {
            let rx = x.select_rows(&regress_rows);
            for (&r, raw) in regress_rows.iter().zip(self.regressor.predict(&rx)) {
                minutes[r] = Some(self.target_transform.inverse(raw).max(0.0));
            }
        }

        (0..x.rows())
            .map(|r| QueuePrediction {
                estimate: if probs[r] >= 0.5 {
                    QueueEstimate::QuickStart
                } else {
                    QueueEstimate::Minutes(minutes[r].expect("regressed above"))
                },
                quick_proba: probs[r],
                calibrated_proba: calibrated[r],
                minutes: minutes[r],
                cutoff_min: self.cutoff_min,
            })
            .collect()
    }
}
