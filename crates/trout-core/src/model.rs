//! The hierarchical model and Algorithm 1 inference.

use trout_linalg::ops::sigmoid;
use trout_linalg::{Matrix, Workspace};
use trout_ml::calibration::PlattScaler;
use trout_ml::nn::Mlp;

use crate::predictor::{
    BatchPredictionRequest, PredictionRequest, Predictor, QueueEstimate, QueuePrediction,
};
use crate::trainer::TargetTransform;

/// Reusable scratch for [`HierarchicalModel`] batch inference: the two MLP
/// workspaces plus the intermediate vectors Algorithm 1 threads between
/// them. A long-lived caller (the serve engine, CV loops) keeps one of these
/// alive so repeated `predict_batch_in` calls stop churning the allocator.
///
/// Tied to the model *architecture*, not the weights — it stays valid across
/// warm-start refits and hot swaps as long as the layer shapes are unchanged
/// (they are, for refits of the same config).
#[derive(Debug)]
pub struct PredictorScratch {
    cls_ws: Workspace,
    reg_ws: Workspace,
    logits: Vec<f32>,
    reg_raw: Vec<f32>,
    regress_rows: Vec<usize>,
    reg_x: Matrix,
    probs: Vec<f32>,
    calibrated: Vec<f32>,
    minutes: Vec<Option<f32>>,
}

/// The trained two-stage system: quick-start classifier + queue regressor.
/// All inference goes through the [`Predictor`] impl.
#[derive(Debug, Clone)]
pub struct HierarchicalModel {
    /// Quick-start cutoff in minutes (10 in the paper).
    pub cutoff_min: f32,
    pub(crate) classifier: Mlp,
    pub(crate) regressor: Mlp,
    pub(crate) target_transform: TargetTransform,
    /// Platt scaler fitted on a held-out slice so the SMOTE-trained
    /// classifier's outputs read as real probabilities. Decisions
    /// (Algorithm 1) still threshold the raw logit at 0.5, as the paper
    /// does; calibration only affects the reported confidence.
    pub(crate) calibrator: Option<PlattScaler>,
}

trout_std::impl_json_struct!(HierarchicalModel {
    cutoff_min,
    classifier,
    regressor,
    target_transform,
    calibrator
});

impl HierarchicalModel {
    /// The regressor's raw queue-time estimate for one row.
    fn regress_one(&self, features: &[f32]) -> f32 {
        let raw = self.regressor.predict_one(features);
        self.target_transform.inverse(raw).max(0.0)
    }

    /// Builds a [`PredictorScratch`] matching this model's architecture,
    /// pre-sized for `batch_rows`-row batches.
    pub fn scratch(&self, batch_rows: usize) -> PredictorScratch {
        let rows = batch_rows.max(1);
        PredictorScratch {
            cls_ws: self.classifier.workspace(rows),
            reg_ws: self.regressor.workspace(rows),
            logits: Vec::with_capacity(rows),
            reg_raw: Vec::with_capacity(rows),
            regress_rows: Vec::with_capacity(rows),
            reg_x: Matrix::zeros(rows, self.classifier.input_dim()),
            probs: Vec::with_capacity(rows),
            calibrated: Vec::with_capacity(rows),
            minutes: Vec::with_capacity(rows),
        }
    }

    /// [`Predictor::predict_batch`] against caller-owned scratch —
    /// bit-identical output, but the MLP forward passes and row gathering
    /// reuse the scratch buffers instead of allocating per call.
    pub fn predict_batch_in(
        &self,
        req: BatchPredictionRequest<'_>,
        s: &mut PredictorScratch,
    ) -> Vec<QueuePrediction> {
        let mut out = Vec::with_capacity(req.features.rows());
        self.predict_batch_into(req, s, &mut out);
        out
    }

    /// [`HierarchicalModel::predict_batch_in`] writing into a caller-owned
    /// output vector (cleared first). Once scratch and output have warmed to
    /// the batch size, a call performs **zero** heap allocations — the
    /// serve engine's steady-state predict path rides on this.
    pub fn predict_batch_into(
        &self,
        req: BatchPredictionRequest<'_>,
        s: &mut PredictorScratch,
        out: &mut Vec<QueuePrediction>,
    ) {
        let x = req.features;
        self.classifier.predict_in(x, &mut s.cls_ws, &mut s.logits);
        s.probs.clear();
        s.probs.extend(s.logits.iter().map(|&l| sigmoid(l)));
        s.calibrated.clear();
        match &self.calibrator {
            Some(c) => s
                .calibrated
                .extend(s.logits.iter().map(|&l| c.calibrate(l))),
            None => s.calibrated.extend_from_slice(&s.probs),
        }

        // Rows the regressor must see: classified-long always, all rows when
        // the request wants unconditional minutes.
        s.regress_rows.clear();
        for r in 0..x.rows() {
            if s.probs[r] < 0.5 || req.want_minutes {
                s.regress_rows.push(r);
            }
        }
        s.minutes.clear();
        s.minutes.resize(x.rows(), None);
        if !s.regress_rows.is_empty() {
            x.select_rows_into(&s.regress_rows, &mut s.reg_x);
            self.regressor
                .predict_in(&s.reg_x, &mut s.reg_ws, &mut s.reg_raw);
            for (&r, &raw) in s.regress_rows.iter().zip(&s.reg_raw) {
                s.minutes[r] = Some(self.target_transform.inverse(raw).max(0.0));
            }
        }

        out.clear();
        out.extend((0..x.rows()).map(|r| QueuePrediction {
            estimate: if s.probs[r] >= 0.5 {
                QueueEstimate::QuickStart
            } else {
                QueueEstimate::Minutes(s.minutes[r].expect("regressed above"))
            },
            quick_proba: s.probs[r],
            calibrated_proba: s.calibrated[r],
            minutes: s.minutes[r],
            cutoff_min: self.cutoff_min,
            lane: crate::Lane::Normal,
        }));
    }

    /// Serializes to JSON (the CLI checkpoint format).
    pub fn to_json(&self) -> String {
        trout_std::json::ToJson::to_json_string(self)
    }

    /// Loads a JSON checkpoint.
    pub fn from_json(json: &str) -> Result<HierarchicalModel, trout_std::json::JsonError> {
        trout_std::json::FromJson::from_json_str(json)
    }
}

impl Predictor for HierarchicalModel {
    fn cutoff_min(&self) -> f32 {
        self.cutoff_min
    }

    /// Algorithm 1 for one feature row: classify, and only if the job is
    /// predicted to exceed the cutoff (or the request insists), regress a
    /// concrete queue time.
    fn predict(&self, req: PredictionRequest<'_>) -> QueuePrediction {
        let logit = self.classifier.predict_one(req.features);
        let quick_proba = sigmoid(logit);
        let calibrated_proba = match &self.calibrator {
            Some(c) => c.calibrate(logit),
            None => quick_proba,
        };
        let quick = quick_proba >= 0.5;
        let minutes = if !quick || req.want_minutes {
            Some(self.regress_one(req.features))
        } else {
            None
        };
        QueuePrediction {
            estimate: if quick {
                QueueEstimate::QuickStart
            } else {
                QueueEstimate::Minutes(minutes.expect("regressed above"))
            },
            quick_proba,
            calibrated_proba,
            minutes,
            cutoff_min: self.cutoff_min,
            lane: req.lane,
        }
    }

    /// Batched Algorithm 1: one classifier pass over the whole matrix, one
    /// regressor pass over the rows that need it. Bitwise identical to the
    /// row-by-row path because MLP inference is row-independent.
    fn predict_batch(&self, req: BatchPredictionRequest<'_>) -> Vec<QueuePrediction> {
        let mut scratch = self.scratch(req.features.rows());
        self.predict_batch_in(req, &mut scratch)
    }
}
