//! The hierarchical model and Algorithm 1 inference.

use trout_linalg::ops::sigmoid;
use trout_linalg::{Matrix, Workspace};
use trout_ml::calibration::PlattScaler;
use trout_ml::nn::Mlp;

use crate::predictor::{
    BatchPredictionRequest, PredictionRequest, Predictor, QueueEstimate, QueuePrediction,
};
use crate::trainer::TargetTransform;

/// Reusable scratch for [`HierarchicalModel`] batch inference: the two MLP
/// workspaces plus the intermediate vectors Algorithm 1 threads between
/// them. A long-lived caller (the serve engine, CV loops) keeps one of these
/// alive so repeated `predict_batch_in` calls stop churning the allocator.
///
/// Tied to the model *architecture*, not the weights — it stays valid across
/// warm-start refits and hot swaps as long as the layer shapes are unchanged
/// (they are, for refits of the same config).
#[derive(Debug)]
pub struct PredictorScratch {
    cls_ws: Workspace,
    reg_ws: Workspace,
    logits: Vec<f32>,
    reg_raw: Vec<f32>,
    regress_rows: Vec<usize>,
    reg_x: Matrix,
}

/// The trained two-stage system: quick-start classifier + queue regressor.
/// All inference goes through the [`Predictor`] impl.
#[derive(Debug, Clone)]
pub struct HierarchicalModel {
    /// Quick-start cutoff in minutes (10 in the paper).
    pub cutoff_min: f32,
    pub(crate) classifier: Mlp,
    pub(crate) regressor: Mlp,
    pub(crate) target_transform: TargetTransform,
    /// Platt scaler fitted on a held-out slice so the SMOTE-trained
    /// classifier's outputs read as real probabilities. Decisions
    /// (Algorithm 1) still threshold the raw logit at 0.5, as the paper
    /// does; calibration only affects the reported confidence.
    pub(crate) calibrator: Option<PlattScaler>,
}

trout_std::impl_json_struct!(HierarchicalModel {
    cutoff_min,
    classifier,
    regressor,
    target_transform,
    calibrator
});

impl HierarchicalModel {
    /// The regressor's raw queue-time estimate for one row.
    fn regress_one(&self, features: &[f32]) -> f32 {
        let raw = self.regressor.predict_one(features);
        self.target_transform.inverse(raw).max(0.0)
    }

    /// Builds a [`PredictorScratch`] matching this model's architecture,
    /// pre-sized for `batch_rows`-row batches.
    pub fn scratch(&self, batch_rows: usize) -> PredictorScratch {
        let rows = batch_rows.max(1);
        PredictorScratch {
            cls_ws: self.classifier.workspace(rows),
            reg_ws: self.regressor.workspace(rows),
            logits: Vec::with_capacity(rows),
            reg_raw: Vec::with_capacity(rows),
            regress_rows: Vec::with_capacity(rows),
            reg_x: Matrix::zeros(rows, self.classifier.input_dim()),
        }
    }

    /// [`Predictor::predict_batch`] against caller-owned scratch —
    /// bit-identical output, but the MLP forward passes and row gathering
    /// reuse the scratch buffers instead of allocating per call.
    pub fn predict_batch_in(
        &self,
        req: BatchPredictionRequest<'_>,
        s: &mut PredictorScratch,
    ) -> Vec<QueuePrediction> {
        let x = req.features;
        self.classifier.predict_in(x, &mut s.cls_ws, &mut s.logits);
        let probs: Vec<f32> = s.logits.iter().map(|&l| sigmoid(l)).collect();
        let calibrated: Vec<f32> = match &self.calibrator {
            Some(c) => c.calibrate_batch(&s.logits),
            None => probs.clone(),
        };

        // Rows the regressor must see: classified-long always, all rows when
        // the request wants unconditional minutes.
        s.regress_rows.clear();
        s.regress_rows
            .extend((0..x.rows()).filter(|&r| probs[r] < 0.5 || req.want_minutes));
        let mut minutes: Vec<Option<f32>> = vec![None; x.rows()];
        if !s.regress_rows.is_empty() {
            x.select_rows_into(&s.regress_rows, &mut s.reg_x);
            self.regressor
                .predict_in(&s.reg_x, &mut s.reg_ws, &mut s.reg_raw);
            for (&r, &raw) in s.regress_rows.iter().zip(&s.reg_raw) {
                minutes[r] = Some(self.target_transform.inverse(raw).max(0.0));
            }
        }

        (0..x.rows())
            .map(|r| QueuePrediction {
                estimate: if probs[r] >= 0.5 {
                    QueueEstimate::QuickStart
                } else {
                    QueueEstimate::Minutes(minutes[r].expect("regressed above"))
                },
                quick_proba: probs[r],
                calibrated_proba: calibrated[r],
                minutes: minutes[r],
                cutoff_min: self.cutoff_min,
                lane: crate::Lane::Normal,
            })
            .collect()
    }

    /// Serializes to JSON (the CLI checkpoint format).
    pub fn to_json(&self) -> String {
        trout_std::json::ToJson::to_json_string(self)
    }

    /// Loads a JSON checkpoint.
    pub fn from_json(json: &str) -> Result<HierarchicalModel, trout_std::json::JsonError> {
        trout_std::json::FromJson::from_json_str(json)
    }
}

impl Predictor for HierarchicalModel {
    fn cutoff_min(&self) -> f32 {
        self.cutoff_min
    }

    /// Algorithm 1 for one feature row: classify, and only if the job is
    /// predicted to exceed the cutoff (or the request insists), regress a
    /// concrete queue time.
    fn predict(&self, req: PredictionRequest<'_>) -> QueuePrediction {
        let logit = self.classifier.predict_one(req.features);
        let quick_proba = sigmoid(logit);
        let calibrated_proba = match &self.calibrator {
            Some(c) => c.calibrate(logit),
            None => quick_proba,
        };
        let quick = quick_proba >= 0.5;
        let minutes = if !quick || req.want_minutes {
            Some(self.regress_one(req.features))
        } else {
            None
        };
        QueuePrediction {
            estimate: if quick {
                QueueEstimate::QuickStart
            } else {
                QueueEstimate::Minutes(minutes.expect("regressed above"))
            },
            quick_proba,
            calibrated_proba,
            minutes,
            cutoff_min: self.cutoff_min,
            lane: req.lane,
        }
    }

    /// Batched Algorithm 1: one classifier pass over the whole matrix, one
    /// regressor pass over the rows that need it. Bitwise identical to the
    /// row-by-row path because MLP inference is row-independent.
    fn predict_batch(&self, req: BatchPredictionRequest<'_>) -> Vec<QueuePrediction> {
        let mut scratch = self.scratch(req.features.rows());
        self.predict_batch_in(req, &mut scratch)
    }
}
