/// A half-open interval `[start, end)` over an ordered key type.
///
/// Half-open semantics match how the simulator records job lifetimes: a job
/// that starts exactly when another ends does not overlap it. Empty intervals
/// (`start >= end`) are permitted and overlap nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval<K> {
    /// Inclusive lower bound.
    pub start: K,
    /// Exclusive upper bound.
    pub end: K,
}

impl<K: Copy + Ord> Interval<K> {
    /// Creates a new interval. `start > end` is allowed and yields an empty
    /// interval; no normalization is performed.
    #[inline]
    pub fn new(start: K, end: K) -> Self {
        Interval { start, end }
    }

    /// Returns `true` if the interval contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Returns `true` if `point` lies in `[start, end)`.
    #[inline]
    pub fn contains(&self, point: K) -> bool {
        self.start <= point && point < self.end
    }

    /// Returns `true` if the two half-open intervals share at least one point.
    #[inline]
    pub fn overlaps(&self, other: &Interval<K>) -> bool {
        self.start < other.end && other.start < self.end && !self.is_empty() && !other.is_empty()
    }

    /// Returns the intersection of the two intervals, or `None` if disjoint.
    #[inline]
    pub fn intersection(&self, other: &Interval<K>) -> Option<Interval<K>> {
        if self.overlaps(other) {
            Some(Interval::new(
                self.start.max(other.start),
                self.end.min(other.end),
            ))
        } else {
            None
        }
    }

    /// Returns the smallest interval covering both inputs (the convex hull).
    #[inline]
    pub fn hull(&self, other: &Interval<K>) -> Interval<K> {
        Interval::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// A degenerate interval covering exactly one point, `[p, p+1)` cannot be
    /// expressed generically, so stabbing queries use [`Interval::contains`]
    /// instead; this helper builds the zero-width `[p, p)` marker used by the
    /// chunked index to locate chunks.
    #[inline]
    pub fn point(p: K) -> Self {
        Interval { start: p, end: p }
    }
}

impl Interval<i64> {
    /// Length of an integer-keyed interval (0 for empty intervals).
    #[inline]
    pub fn len(&self) -> i64 {
        (self.end - self.start).max(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_half_open() {
        let iv = Interval::new(2, 5);
        assert!(!iv.contains(1));
        assert!(iv.contains(2));
        assert!(iv.contains(4));
        assert!(!iv.contains(5));
    }

    #[test]
    fn overlap_is_half_open() {
        let a = Interval::new(0, 5);
        assert!(a.overlaps(&Interval::new(4, 10)));
        assert!(!a.overlaps(&Interval::new(5, 10)));
        assert!(!Interval::new(5, 10).overlaps(&a));
        assert!(a.overlaps(&Interval::new(-3, 1)));
    }

    #[test]
    fn empty_intervals_never_overlap() {
        let empty = Interval::new(3, 3);
        assert!(empty.is_empty());
        assert!(!empty.overlaps(&Interval::new(0, 10)));
        assert!(!Interval::new(0, 10).overlaps(&empty));
        let inverted = Interval::new(7, 2);
        assert!(inverted.is_empty());
        assert!(!inverted.overlaps(&Interval::new(0, 10)));
    }

    #[test]
    fn intersection_and_hull() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        assert_eq!(a.intersection(&b), Some(Interval::new(5, 10)));
        assert_eq!(a.hull(&b), Interval::new(0, 15));
        assert_eq!(a.intersection(&Interval::new(10, 20)), None);
    }

    #[test]
    fn integer_len() {
        assert_eq!(Interval::new(3i64, 9).len(), 6);
        assert_eq!(Interval::new(9i64, 3).len(), 0);
    }
}
