//! Interval trees for overlap feature engineering.
//!
//! The TROUT paper engineers most of its Table-II features by asking, for every
//! job `j`, "which other jobs were pending / running at the instant `j` became
//! eligible?" — i.e. *stabbing queries* against millions of `[eligible, start)`
//! and `[start, end)` intervals. The authors report using interval trees built
//! over chunks of 100 000 jobs with a 10 000-job overlap, merged after the
//! per-chunk passes, to make this tractable (§III, §V).
//!
//! This crate provides:
//!
//! * [`Interval`] — a half-open interval `[start, end)` over any ordered key.
//! * [`IntervalTree`] — a static, array-backed augmented interval tree with
//!   `O(n log n)` construction and `O(log n + k)` overlap/stabbing queries.
//! * [`ChunkedIntervalIndex`] — the paper's chunked build (fixed-size chunks
//!   with overlap, results merged and de-duplicated), useful for streaming
//!   construction and as the subject of the A6 ablation.
//! * [`DynamicIntervalTree`] — a mutable treap with `O(log n)` insert and
//!   delete, backing the online serving path where jobs enter and leave the
//!   pending/running sets one event at a time.
//! * [`NaiveIndex`] — an `O(n)`-per-query linear scan used as the correctness
//!   oracle in tests and the baseline in the interval-tree speedup benchmark.
//!
//! # Example
//!
//! ```
//! use trout_itree::{Interval, IntervalTree};
//!
//! let tree = IntervalTree::new(vec![
//!     (Interval::new(0, 10), "a"),
//!     (Interval::new(5, 15), "b"),
//!     (Interval::new(20, 30), "c"),
//! ]);
//! let mut hits: Vec<&str> = tree.stab(7).map(|(_, v)| *v).collect();
//! hits.sort();
//! assert_eq!(hits, ["a", "b"]);
//! assert_eq!(tree.count_overlaps(Interval::new(12, 25)), 2);
//! ```

mod chunked;
mod dynamic;
mod interval;
mod naive;
mod tree;

pub use chunked::ChunkedIntervalIndex;
pub use dynamic::DynamicIntervalTree;
pub use interval::Interval;
pub use naive::NaiveIndex;
pub use tree::IntervalTree;
