use crate::Interval;

/// A linear-scan interval index: every query walks all entries.
///
/// This is the correctness oracle for [`crate::IntervalTree`] in the property
/// tests and the baseline in the A6 "interval trees vs naive overlap
/// computation" ablation the paper motivates in §V.
#[derive(Debug, Clone, Default)]
pub struct NaiveIndex<K, V> {
    entries: Vec<(Interval<K>, V)>,
}

impl<K: Copy + Ord, V> NaiveIndex<K, V> {
    /// Creates an index over the given entries.
    pub fn new(entries: Vec<(Interval<K>, V)>) -> Self {
        NaiveIndex { entries }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry (the naive index, unlike the tree, is growable).
    pub fn push(&mut self, interval: Interval<K>, value: V) {
        self.entries.push((interval, value));
    }

    /// Calls `visit` for every entry overlapping `query` — O(n).
    pub fn for_each_overlap<F: FnMut(&Interval<K>, &V)>(&self, query: Interval<K>, mut visit: F) {
        for (iv, v) in &self.entries {
            if iv.overlaps(&query) {
                visit(iv, v);
            }
        }
    }

    /// Counts entries overlapping `query` — O(n).
    pub fn count_overlaps(&self, query: Interval<K>) -> usize {
        let mut n = 0;
        self.for_each_overlap(query, |_, _| n += 1);
        n
    }

    /// Returns entries containing `point` — O(n).
    pub fn stab(&self, point: K) -> impl Iterator<Item = &(Interval<K>, V)> {
        self.entries
            .iter()
            .filter(move |(iv, _)| iv.contains(point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_semantics_of_tree_on_small_case() {
        let entries = vec![
            (Interval::new(0i64, 10), 'a'),
            (Interval::new(5, 15), 'b'),
            (Interval::new(20, 30), 'c'),
        ];
        let naive = NaiveIndex::new(entries.clone());
        let tree = crate::IntervalTree::new(entries);
        for q in [
            Interval::new(-5i64, 0),
            Interval::new(0, 1),
            Interval::new(9, 21),
            Interval::new(30, 40),
        ] {
            assert_eq!(
                naive.count_overlaps(q),
                tree.count_overlaps(q),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn push_grows_index() {
        let mut idx = NaiveIndex::default();
        assert!(idx.is_empty());
        idx.push(Interval::new(0i64, 2), ());
        idx.push(Interval::new(1, 3), ());
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.count_overlaps(Interval::new(1, 2)), 2);
        assert_eq!(idx.stab(0).count(), 1);
    }
}
