use crate::Interval;

/// A static, array-backed augmented interval tree.
///
/// Entries are sorted by `(start, end)` and an implicit balanced binary tree is
/// laid over the sorted array; each tree node (the midpoint of its slice)
/// stores the maximum `end` in its subtree. Overlap queries descend the tree
/// pruning any subtree whose maximum end does not reach the query start and
/// any right subtree whose minimum start is past the query end, giving
/// `O(log n + k)` for `k` hits.
///
/// The tree is immutable after construction — the feature pipeline builds it
/// once per replay pass — which keeps the layout a pair of flat, cache-friendly
/// vectors (see the Rust Performance Book's guidance on boxed slices and flat
/// storage for hot data).
#[derive(Debug, Clone)]
pub struct IntervalTree<K, V> {
    entries: Box<[(Interval<K>, V)]>,
    /// `max_end[i]` = maximum `end` over the subtree rooted at sorted index `i`.
    max_end: Box<[K]>,
}

impl<K: Copy + Ord, V> IntervalTree<K, V> {
    /// Builds a tree from `(interval, payload)` pairs. Empty intervals are
    /// kept (so payload counts stay faithful) but never reported by queries.
    pub fn new(mut entries: Vec<(Interval<K>, V)>) -> Self {
        entries.sort_by_key(|e| e.0);
        let entries: Box<[(Interval<K>, V)]> = entries.into_boxed_slice();
        let mut max_end: Vec<K> = entries.iter().map(|(iv, _)| iv.end).collect();
        if !entries.is_empty() {
            Self::build_max_end(&entries, &mut max_end, 0, entries.len());
        }
        IntervalTree {
            entries,
            max_end: max_end.into_boxed_slice(),
        }
    }

    /// Computes subtree maxima over the slice `[lo, hi)` rooted at its midpoint.
    fn build_max_end(entries: &[(Interval<K>, V)], max_end: &mut [K], lo: usize, hi: usize) -> K {
        debug_assert!(lo < hi);
        let mid = lo + (hi - lo) / 2;
        let mut m = entries[mid].0.end;
        if lo < mid {
            m = m.max(Self::build_max_end(entries, max_end, lo, mid));
        }
        if mid + 1 < hi {
            m = m.max(Self::build_max_end(entries, max_end, mid + 1, hi));
        }
        max_end[mid] = m;
        m
    }

    /// Number of stored entries (including empty intervals).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the tree stores no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries in `(start, end)` order.
    pub fn iter(&self) -> impl Iterator<Item = &(Interval<K>, V)> {
        self.entries.iter()
    }

    /// Calls `visit` for every stored interval overlapping `query`.
    pub fn for_each_overlap<F: FnMut(&Interval<K>, &V)>(&self, query: Interval<K>, mut visit: F) {
        if query.is_empty() || self.entries.is_empty() {
            return;
        }
        self.visit_range(0, self.entries.len(), &query, &mut visit);
    }

    fn visit_range<F: FnMut(&Interval<K>, &V)>(
        &self,
        lo: usize,
        hi: usize,
        query: &Interval<K>,
        visit: &mut F,
    ) {
        if lo >= hi || self.max_end[lo + (hi - lo) / 2] <= query.start {
            // Subtree max end cannot reach the query: nothing here overlaps.
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.visit_range(lo, mid, query, visit);
        let (iv, v) = &self.entries[mid];
        if iv.start >= query.end {
            // Sorted by start: the midpoint and everything right of it starts
            // at or after the query end, so only the left subtree can match.
            return;
        }
        if iv.overlaps(query) {
            visit(iv, v);
        }
        self.visit_range(mid + 1, hi, query, visit);
    }

    /// Returns an iterator over entries overlapping `query` (collects hits
    /// eagerly; use [`IntervalTree::for_each_overlap`] on hot paths).
    pub fn overlaps(&self, query: Interval<K>) -> impl Iterator<Item = &(Interval<K>, V)> {
        let mut hits = Vec::new();
        if !query.is_empty() && !self.entries.is_empty() {
            self.collect_range(0, self.entries.len(), &query, &mut hits);
        }
        hits.into_iter()
    }

    fn collect_range<'a>(
        &'a self,
        lo: usize,
        hi: usize,
        query: &Interval<K>,
        out: &mut Vec<&'a (Interval<K>, V)>,
    ) {
        if lo >= hi || self.max_end[lo + (hi - lo) / 2] <= query.start {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.collect_range(lo, mid, query, out);
        let entry = &self.entries[mid];
        if entry.0.start >= query.end {
            return;
        }
        if entry.0.overlaps(query) {
            out.push(entry);
        }
        self.collect_range(mid + 1, hi, query, out);
    }

    /// Returns entries whose interval contains `point`.
    pub fn stab(&self, point: K) -> impl Iterator<Item = &(Interval<K>, V)> {
        let mut hits = Vec::new();
        if !self.entries.is_empty() {
            self.stab_range(0, self.entries.len(), point, &mut hits);
        }
        hits.into_iter()
    }

    fn stab_range<'a>(
        &'a self,
        lo: usize,
        hi: usize,
        point: K,
        out: &mut Vec<&'a (Interval<K>, V)>,
    ) {
        if lo >= hi || self.max_end[lo + (hi - lo) / 2] <= point {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.stab_range(lo, mid, point, out);
        let entry = &self.entries[mid];
        if entry.0.start > point {
            return;
        }
        if entry.0.contains(point) {
            out.push(entry);
        }
        self.stab_range(mid + 1, hi, point, out);
    }

    /// Counts entries overlapping `query` without materializing them.
    pub fn count_overlaps(&self, query: Interval<K>) -> usize {
        let mut n = 0usize;
        self.for_each_overlap(query, |_, _| n += 1);
        n
    }

    /// Folds an accumulator over the payloads of all entries overlapping
    /// `query`. This is the workhorse of the feature pipeline: e.g. summing
    /// requested CPUs over every job pending at an eligibility instant.
    pub fn fold_overlap<A, F: FnMut(A, &Interval<K>, &V) -> A>(
        &self,
        query: Interval<K>,
        init: A,
        mut f: F,
    ) -> A {
        let mut acc = Some(init);
        self.for_each_overlap(query, |iv, v| {
            let a = acc.take().expect("fold accumulator present");
            acc = Some(f(a, iv, v));
        });
        acc.expect("fold accumulator present")
    }
}

impl<K: Copy + Ord, V> FromIterator<(Interval<K>, V)> for IntervalTree<K, V> {
    fn from_iter<I: IntoIterator<Item = (Interval<K>, V)>>(iter: I) -> Self {
        IntervalTree::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;

    fn sample() -> IntervalTree<i64, usize> {
        IntervalTree::new(vec![
            (Interval::new(0, 10), 0),
            (Interval::new(5, 15), 1),
            (Interval::new(20, 30), 2),
            (Interval::new(25, 26), 3),
            (Interval::new(-5, 100), 4),
            (Interval::new(7, 7), 5), // empty: stored but never reported
        ])
    }

    fn ids(hits: Vec<&(Interval<i64>, usize)>) -> Vec<usize> {
        let mut v: Vec<usize> = hits.into_iter().map(|(_, id)| *id).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn stab_finds_all_containing() {
        let t = sample();
        assert_eq!(ids(t.stab(7).collect()), vec![0, 1, 4]);
        assert_eq!(ids(t.stab(25).collect()), vec![2, 3, 4]);
        assert_eq!(ids(t.stab(-10).collect()), Vec::<usize>::new());
    }

    #[test]
    fn overlap_query() {
        let t = sample();
        assert_eq!(
            ids(t.overlaps(Interval::new(12, 22)).collect()),
            vec![1, 2, 4]
        );
        assert_eq!(t.count_overlaps(Interval::new(12, 22)), 3);
        assert_eq!(t.count_overlaps(Interval::new(200, 300)), 0);
    }

    #[test]
    fn empty_query_matches_nothing() {
        let t = sample();
        assert_eq!(t.count_overlaps(Interval::new(5, 5)), 0);
        assert_eq!(t.count_overlaps(Interval::new(9, 3)), 0);
    }

    #[test]
    fn empty_tree() {
        let t: IntervalTree<i64, ()> = IntervalTree::new(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.count_overlaps(Interval::new(0, 10)), 0);
        assert_eq!(t.stab(0).count(), 0);
    }

    #[test]
    fn fold_sums_payloads() {
        let t = sample();
        let total: usize = t.fold_overlap(Interval::new(0, 50), 0, |acc, _, v| acc + v);
        // ids 0,1,2,3,4 overlap; 5 is empty.
        assert_eq!(total, 10);
    }

    #[test]
    fn single_entry() {
        let t = IntervalTree::new(vec![(Interval::new(3i64, 4), 9usize)]);
        assert_eq!(t.count_overlaps(Interval::new(0, 10)), 1);
        assert_eq!(t.count_overlaps(Interval::new(4, 10)), 0);
        assert_eq!(ids(t.stab(3).collect()), vec![9]);
    }

    #[test]
    fn duplicates_are_all_reported() {
        let t = IntervalTree::new(vec![
            (Interval::new(0i64, 5), 1usize),
            (Interval::new(0, 5), 2),
            (Interval::new(0, 5), 3),
        ]);
        assert_eq!(t.count_overlaps(Interval::new(1, 2)), 3);
    }
}
