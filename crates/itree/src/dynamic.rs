//! A mutable interval tree: the dynamic counterpart of [`IntervalTree`].
//!
//! [`IntervalTree`](crate::IntervalTree) is built once over a complete trace
//! and never changes — the right shape for offline featurization, and the
//! wrong one for a live prediction service, where every `submit`/`start`/
//! `end` event moves one job between the pending and running sets. This
//! treap supports `O(log n)` expected insert and delete while answering the
//! same stabbing/overlap queries with the same `max_end` pruning.
//!
//! Entries are ordered by `(start, end, value)`; the treap priority is a
//! deterministic hash of that key and an insertion counter, so tree shape —
//! and therefore visit order and timing — is reproducible run to run.

use crate::Interval;

/// One treap node; `max_end` is the maximum interval end in its subtree.
struct Node<K, V> {
    iv: Interval<K>,
    val: V,
    prio: u64,
    max_end: K,
    left: Option<Box<Node<K, V>>>,
    right: Option<Box<Node<K, V>>>,
}

impl<K: Copy + Ord, V> Node<K, V> {
    fn new(iv: Interval<K>, val: V, prio: u64) -> Box<Self> {
        Box::new(Node {
            iv,
            val,
            prio,
            max_end: iv.end,
            left: None,
            right: None,
        })
    }

    /// Recomputes `max_end` from the node's own interval and its children.
    fn pull(&mut self) {
        let mut m = self.iv.end;
        if let Some(l) = &self.left {
            m = m.max(l.max_end);
        }
        if let Some(r) = &self.right {
            m = m.max(r.max_end);
        }
        self.max_end = m;
    }
}

/// A mutable interval tree over half-open intervals, keyed by
/// `(interval, value)` so equal intervals with distinct payloads coexist.
///
/// ```
/// use trout_itree::{DynamicIntervalTree, Interval};
///
/// let mut t = DynamicIntervalTree::new();
/// t.insert(Interval::new(0i64, 10), 1u64);
/// t.insert(Interval::new(5, 15), 2);
/// assert_eq!(t.count_overlaps(Interval::new(7, 8)), 2);
/// assert!(t.remove(Interval::new(0, 10), &1));
/// assert_eq!(t.count_overlaps(Interval::new(7, 8)), 1);
/// ```
pub struct DynamicIntervalTree<K, V> {
    root: Option<Box<Node<K, V>>>,
    len: usize,
    /// Monotone counter mixed into treap priorities.
    inserted: u64,
}

impl<K: Copy + Ord, V: Ord> Default for DynamicIntervalTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64 finalizer — the same mix `trout_linalg::SplitMix64` uses,
/// inlined here so `itree` stays dependency-free.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<K: Copy + Ord, V: Ord> DynamicIntervalTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        DynamicIntervalTree {
            root: None,
            len: 0,
            inserted: 0,
        }
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree stores no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts one `(interval, value)` entry. Duplicate keys are allowed;
    /// each insertion adds one entry.
    pub fn insert(&mut self, iv: Interval<K>, val: V) {
        self.inserted += 1;
        let prio = mix(self.inserted);
        let node = Node::new(iv, val, prio);
        let root = self.root.take();
        self.root = Some(Self::insert_node(root, node));
        self.len += 1;
    }

    fn insert_node(tree: Option<Box<Node<K, V>>>, node: Box<Node<K, V>>) -> Box<Node<K, V>> {
        let Some(mut t) = tree else {
            return node;
        };
        if node.prio > t.prio {
            // The new node becomes the subtree root: split the old tree
            // around its key.
            let (le, gt) = Self::split(Some(t), &node.iv, &node.val);
            let mut n = node;
            n.left = le;
            n.right = gt;
            n.pull();
            return n;
        }
        if (node.iv, &node.val) < (t.iv, &t.val) {
            let l = t.left.take();
            t.left = Some(Self::insert_node(l, node));
        } else {
            let r = t.right.take();
            t.right = Some(Self::insert_node(r, node));
        }
        t.pull();
        t
    }

    /// Splits `tree` into entries with key `<= (iv, val)` and `> (iv, val)`.
    #[allow(clippy::type_complexity)]
    fn split(
        tree: Option<Box<Node<K, V>>>,
        iv: &Interval<K>,
        val: &V,
    ) -> (Option<Box<Node<K, V>>>, Option<Box<Node<K, V>>>) {
        let Some(mut t) = tree else {
            return (None, None);
        };
        if (t.iv, &t.val) <= (*iv, val) {
            let (le, gt) = Self::split(t.right.take(), iv, val);
            t.right = le;
            t.pull();
            (Some(t), gt)
        } else {
            let (le, gt) = Self::split(t.left.take(), iv, val);
            t.left = gt;
            t.pull();
            (le, Some(t))
        }
    }

    /// Removes one entry exactly matching `(iv, val)`; returns whether an
    /// entry was removed.
    pub fn remove(&mut self, iv: Interval<K>, val: &V) -> bool {
        let root = self.root.take();
        let (root, removed) = Self::remove_node(root, &iv, val);
        self.root = root;
        if removed {
            self.len -= 1;
        }
        removed
    }

    #[allow(clippy::type_complexity)]
    fn remove_node(
        tree: Option<Box<Node<K, V>>>,
        iv: &Interval<K>,
        val: &V,
    ) -> (Option<Box<Node<K, V>>>, bool) {
        let Some(mut t) = tree else {
            return (None, false);
        };
        let removed;
        match (*iv, val).cmp(&(t.iv, &t.val)) {
            std::cmp::Ordering::Equal => {
                let merged = Self::merge(t.left.take(), t.right.take());
                return (merged, true);
            }
            std::cmp::Ordering::Less => {
                let (l, r) = Self::remove_node(t.left.take(), iv, val);
                t.left = l;
                removed = r;
            }
            std::cmp::Ordering::Greater => {
                let (r, rm) = Self::remove_node(t.right.take(), iv, val);
                t.right = r;
                removed = rm;
            }
        }
        t.pull();
        (Some(t), removed)
    }

    /// Merges two trees where every key in `a` is `<=` every key in `b`.
    fn merge(a: Option<Box<Node<K, V>>>, b: Option<Box<Node<K, V>>>) -> Option<Box<Node<K, V>>> {
        match (a, b) {
            (None, b) => b,
            (a, None) => a,
            (Some(mut a), Some(mut b)) => {
                if a.prio > b.prio {
                    a.right = Self::merge(a.right.take(), Some(b));
                    a.pull();
                    Some(a)
                } else {
                    b.left = Self::merge(Some(a), b.left.take());
                    b.pull();
                    Some(b)
                }
            }
        }
    }

    /// Calls `visit` for every stored interval overlapping `query`, in
    /// `(start, end, value)` order.
    pub fn for_each_overlap<F: FnMut(&Interval<K>, &V)>(&self, query: Interval<K>, mut visit: F) {
        if query.is_empty() {
            return;
        }
        if let Some(root) = &self.root {
            Self::visit_node(root, &query, &mut visit);
        }
    }

    fn visit_node<F: FnMut(&Interval<K>, &V)>(
        node: &Node<K, V>,
        query: &Interval<K>,
        visit: &mut F,
    ) {
        if node.max_end <= query.start {
            // Nothing in this subtree reaches the query.
            return;
        }
        if let Some(l) = &node.left {
            Self::visit_node(l, query, visit);
        }
        if node.iv.start >= query.end {
            // Keys are start-ordered: the node and its right subtree all
            // start at or after the query end.
            return;
        }
        if node.iv.overlaps(query) {
            visit(&node.iv, &node.val);
        }
        if let Some(r) = &node.right {
            Self::visit_node(r, query, visit);
        }
    }

    /// Collects the values of entries containing `point` (the half-open
    /// stabbing predicate `start <= point < end`).
    pub fn stab_values(&self, point: K) -> Vec<&V> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            Self::collect_stab(root, point, &mut out);
        }
        out
    }

    fn collect_stab<'a>(node: &'a Node<K, V>, point: K, out: &mut Vec<&'a V>) {
        if node.max_end <= point {
            return;
        }
        if let Some(l) = &node.left {
            Self::collect_stab(l, point, out);
        }
        if node.iv.start > point {
            return;
        }
        if node.iv.contains(point) {
            out.push(&node.val);
        }
        if let Some(r) = &node.right {
            Self::collect_stab(r, point, out);
        }
    }

    /// Counts entries overlapping `query` without materializing them.
    pub fn count_overlaps(&self, query: Interval<K>) -> usize {
        let mut n = 0usize;
        self.for_each_overlap(query, |_, _| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids_overlapping(t: &DynamicIntervalTree<i64, u64>, q: Interval<i64>) -> Vec<u64> {
        let mut v = Vec::new();
        t.for_each_overlap(q, |_, &id| v.push(id));
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut t = DynamicIntervalTree::new();
        t.insert(Interval::new(0i64, 10), 0u64);
        t.insert(Interval::new(5, 15), 1);
        t.insert(Interval::new(20, 30), 2);
        assert_eq!(t.len(), 3);
        assert_eq!(ids_overlapping(&t, Interval::new(7, 8)), vec![0, 1]);
        assert!(t.remove(Interval::new(5, 15), &1));
        assert!(!t.remove(Interval::new(5, 15), &1), "already removed");
        assert_eq!(ids_overlapping(&t, Interval::new(7, 8)), vec![0]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn open_ended_intervals_stab_like_sets() {
        // The live pending/running sets use [t, i64::MAX) intervals.
        let mut t = DynamicIntervalTree::new();
        for (start, id) in [(100i64, 1u64), (200, 2), (300, 3)] {
            t.insert(Interval::new(start, i64::MAX), id);
        }
        assert_eq!(t.stab_values(50), Vec::<&u64>::new());
        assert_eq!(t.stab_values(250).len(), 2);
        assert!(t.remove(Interval::new(200, i64::MAX), &2));
        assert_eq!(t.stab_values(250).len(), 1);
    }

    #[test]
    fn duplicate_intervals_distinct_values() {
        let mut t = DynamicIntervalTree::new();
        t.insert(Interval::new(0i64, 5), 7u64);
        t.insert(Interval::new(0, 5), 8);
        t.insert(Interval::new(0, 5), 9);
        assert_eq!(t.count_overlaps(Interval::new(1, 2)), 3);
        assert!(t.remove(Interval::new(0, 5), &8));
        assert_eq!(ids_overlapping(&t, Interval::new(1, 2)), vec![7, 9]);
    }

    #[test]
    fn empty_and_inverted_queries_match_nothing() {
        let mut t = DynamicIntervalTree::new();
        t.insert(Interval::new(0i64, 10), 1u64);
        assert_eq!(t.count_overlaps(Interval::new(5, 5)), 0);
        assert_eq!(t.count_overlaps(Interval::new(9, 3)), 0);
        // Empty stored intervals are kept but never reported.
        t.insert(Interval::new(4, 4), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.count_overlaps(Interval::new(0, 10)), 1);
    }

    #[test]
    fn visit_order_is_sorted_by_start() {
        let mut t = DynamicIntervalTree::new();
        for (s, id) in [(30i64, 0u64), (10, 1), (20, 2), (10, 3)] {
            t.insert(Interval::new(s, 100), id);
        }
        let mut starts = Vec::new();
        t.for_each_overlap(Interval::new(0, 200), |iv, _| starts.push(iv.start));
        assert_eq!(starts, vec![10, 10, 20, 30]);
    }
}
