use crate::{Interval, IntervalTree};

/// The paper's chunked interval-tree build: entries are sorted by start time,
/// split into fixed-size chunks with a configurable overlap between adjacent
/// chunks ("groupings of 100,000 jobs with an overlap of 10,000 jobs", §III),
/// one tree is built per chunk — in parallel — and query results are merged
/// back together with de-duplication of the entries shared by two chunks.
///
/// Chunking bounds per-tree build cost and lets the trees be constructed in
/// parallel; the hull test below prunes whole chunks per query, so
/// point-in-time snapshot queries over a long trace touch only a few chunks.
#[derive(Debug, Clone)]
pub struct ChunkedIntervalIndex<K, V> {
    chunks: Vec<Chunk<K, V>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Chunk<K, V> {
    /// Convex hull of every interval in the chunk; queries outside it skip
    /// the chunk entirely.
    hull: Interval<K>,
    /// Entries with id below this were already owned by the previous chunk
    /// (they sit in the shared overlap region) and are suppressed here, which
    /// makes de-duplication O(1) per hit: ids are assigned in sorted order, so
    /// a chunk's entries form a contiguous id range that intersects only the
    /// adjacent chunks' ranges, and if a shared entry matches a query then the
    /// previous chunk's hull matched too and already reported it.
    id_floor: u64,
    tree: IntervalTree<K, (u64, V)>,
}

impl<K: Copy + Ord + Send + Sync, V: Clone + Send + Sync> ChunkedIntervalIndex<K, V> {
    /// Builds the index. `chunk_size` must be positive; `overlap` entries are
    /// shared between adjacent chunks and de-duplicated at query time (ids are
    /// assigned internally in sorted order).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0` or `overlap >= chunk_size`.
    pub fn build(mut entries: Vec<(Interval<K>, V)>, chunk_size: usize, overlap: usize) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        assert!(
            overlap < chunk_size,
            "overlap must be smaller than chunk_size"
        );
        entries.sort_by_key(|e| e.0);
        let len = entries.len();
        let tagged: Vec<(Interval<K>, (u64, V))> = entries
            .into_iter()
            .enumerate()
            .map(|(id, (iv, v))| (iv, (id as u64, v)))
            .collect();

        // Chunk start positions advance by (chunk_size - overlap) so each
        // chunk re-includes the trailing `overlap` entries of its predecessor.
        let stride = chunk_size - overlap;
        let mut spans = Vec::new();
        let mut lo = 0usize;
        let mut prev_hi = 0usize;
        while lo < tagged.len() {
            let hi = (lo + chunk_size).min(tagged.len());
            spans.push((lo, hi, prev_hi));
            if hi == tagged.len() {
                break;
            }
            prev_hi = hi;
            lo += stride;
        }

        let chunks: Vec<Chunk<K, V>> = trout_std::par::par_map(&spans, |&(lo, hi, id_floor)| {
            let slice = &tagged[lo..hi];
            let mut hull = slice[0].0;
            for (iv, _) in slice {
                hull = hull.hull(iv);
            }
            Chunk {
                hull,
                id_floor: id_floor as u64,
                tree: IntervalTree::new(slice.to_vec()),
            }
        });

        ChunkedIntervalIndex { chunks, len }
    }

    /// Total number of distinct entries indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunk trees (entries shared by overlap are stored twice).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Calls `visit` exactly once per distinct entry overlapping `query`,
    /// merging per-chunk results and skipping duplicates from the overlap.
    pub fn for_each_overlap<F: FnMut(&Interval<K>, &V)>(&self, query: Interval<K>, mut visit: F) {
        if query.is_empty() {
            return;
        }
        for chunk in &self.chunks {
            if !chunk.hull.overlaps(&query) {
                continue;
            }
            chunk.tree.for_each_overlap(query, |iv, (id, v)| {
                if *id >= chunk.id_floor {
                    visit(iv, v);
                }
            });
        }
    }

    /// Counts distinct entries overlapping `query`.
    pub fn count_overlaps(&self, query: Interval<K>) -> usize {
        let mut n = 0;
        self.for_each_overlap(query, |_, _| n += 1);
        n
    }

    /// Returns distinct entries containing `point`.
    pub fn stab(&self, point: K) -> Vec<(Interval<K>, V)> {
        let mut out = Vec::new();
        for chunk in &self.chunks {
            if !chunk.hull.contains(point) {
                continue;
            }
            for (iv, (id, v)) in chunk.tree.stab(point) {
                if *id >= chunk.id_floor {
                    out.push((*iv, v.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveIndex;

    fn entries() -> Vec<(Interval<i64>, usize)> {
        (0..200)
            .map(|i| (Interval::new(i as i64 * 3, i as i64 * 3 + 17), i))
            .collect()
    }

    #[test]
    fn matches_naive_across_chunk_boundaries() {
        let es = entries();
        let idx = ChunkedIntervalIndex::build(es.clone(), 50, 10);
        let naive = NaiveIndex::new(es);
        assert!(idx.chunk_count() > 1);
        for qs in (-10..620).step_by(7) {
            let q = Interval::new(qs, qs + 5);
            assert_eq!(
                idx.count_overlaps(q),
                naive.count_overlaps(q),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn wide_queries_spanning_many_chunks_deduplicate() {
        let es = entries();
        let idx = ChunkedIntervalIndex::build(es.clone(), 32, 8);
        let naive = NaiveIndex::new(es);
        let q = Interval::new(-100i64, 1_000);
        assert_eq!(idx.count_overlaps(q), naive.count_overlaps(q));
        assert_eq!(idx.count_overlaps(q), 200);
    }

    #[test]
    fn stab_deduplicates_overlap_region() {
        let es = entries();
        let idx = ChunkedIntervalIndex::build(es.clone(), 50, 25);
        let naive = NaiveIndex::new(es);
        for p in (0..600).step_by(11) {
            let mut got: Vec<usize> = idx.stab(p).into_iter().map(|(_, v)| v).collect();
            let mut want: Vec<usize> = naive.stab(p).map(|(_, v)| *v).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "stab {p}");
        }
    }

    #[test]
    fn single_chunk_when_small() {
        let idx = ChunkedIntervalIndex::build(entries(), 100_000, 10_000);
        assert_eq!(idx.chunk_count(), 1);
        assert_eq!(idx.len(), 200);
    }

    #[test]
    fn empty_input() {
        let idx: ChunkedIntervalIndex<i64, ()> = ChunkedIntervalIndex::build(vec![], 10, 2);
        assert!(idx.is_empty());
        assert_eq!(idx.count_overlaps(Interval::new(0, 100)), 0);
    }

    #[test]
    #[should_panic(expected = "overlap must be smaller")]
    fn rejects_overlap_ge_chunk() {
        let _ = ChunkedIntervalIndex::build(entries(), 10, 10);
    }
}
