//! Property tests: the interval tree and the chunked index must agree with
//! the naive linear scan on arbitrary interval sets and queries.
//!
//! Runs on `trout_std::proptest_lite` with the fixed default seed; a failing
//! case prints its seed and shrunk input plus a `TROUT_PROPTEST_SEED=...`
//! reproduction line.

use trout_itree::{ChunkedIntervalIndex, DynamicIntervalTree, Interval, IntervalTree, NaiveIndex};
use trout_std::proptest_lite::{vec_of, Strategy};
use trout_std::{prop_assert_eq, proptest_lite};

/// Raw `(start, len)` pairs; mapped to indexed intervals inside each property
/// so shrinking stays in the generator's domain.
fn arb_intervals(max_len: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    vec_of(((-1_000i64..1_000), (0i64..200)), 0..max_len)
}

fn to_entries(raw: &[(i64, i64)]) -> Vec<(Interval<i64>, usize)> {
    raw.iter()
        .enumerate()
        .map(|(i, &(start, len))| (Interval::new(start, start + len), i))
        .collect()
}

proptest_lite! {
    #[cases(256)]
    fn tree_overlap_counts_match_naive(
        raw in arb_intervals(64),
        qs in -1_200i64..1_200,
        qlen in 0i64..300
    ) {
        let entries = to_entries(&raw);
        let tree = IntervalTree::new(entries.clone());
        let naive = NaiveIndex::new(entries);
        let q = Interval::new(qs, qs + qlen);
        prop_assert_eq!(tree.count_overlaps(q), naive.count_overlaps(q));
    }

    #[cases(256)]
    fn tree_stab_matches_naive(raw in arb_intervals(64), p in -1_200i64..1_200) {
        let entries = to_entries(&raw);
        let tree = IntervalTree::new(entries.clone());
        let naive = NaiveIndex::new(entries);
        let mut a: Vec<usize> = tree.stab(p).map(|(_, v)| *v).collect();
        let mut b: Vec<usize> = naive.stab(p).map(|(_, v)| *v).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[cases(256)]
    fn tree_reports_each_hit_exactly_once(
        raw in arb_intervals(48),
        qs in -1_200i64..1_200,
        qlen in 1i64..300
    ) {
        let tree = IntervalTree::new(to_entries(&raw));
        let q = Interval::new(qs, qs + qlen);
        let mut seen = Vec::new();
        tree.for_each_overlap(q, |_, &v| seen.push(v));
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(seen.len(), dedup.len(), "duplicate hits");
    }

    #[cases(256)]
    fn chunked_matches_naive_for_any_chunking(
        raw in arb_intervals(80),
        chunk_size in 2usize..40,
        qs in -1_200i64..1_200,
        qlen in 0i64..300
    ) {
        let entries = to_entries(&raw);
        let overlap = chunk_size / 2;
        let chunked = ChunkedIntervalIndex::build(entries.clone(), chunk_size, overlap);
        let naive = NaiveIndex::new(entries);
        let q = Interval::new(qs, qs + qlen);
        prop_assert_eq!(chunked.count_overlaps(q), naive.count_overlaps(q));
    }

    // The dynamic treap must agree with a Vec model under arbitrary
    // interleaved inserts and removes — the invariant the live serving
    // path leans on when jobs move between pending and running.
    #[cases(192)]
    fn dynamic_tree_matches_model_under_churn(
        raw in arb_intervals(48),
        remove_every in 2usize..6,
        qs in -1_200i64..1_200,
        qlen in 0i64..300
    ) {
        let entries = to_entries(&raw);
        let mut tree: DynamicIntervalTree<i64, usize> = DynamicIntervalTree::new();
        let mut model: Vec<(Interval<i64>, usize)> = Vec::new();
        let q = Interval::new(qs, qs + qlen);
        for (i, &(iv, v)) in entries.iter().enumerate() {
            tree.insert(iv, v);
            model.push((iv, v));
            if i % remove_every == remove_every - 1 {
                // Remove the entry inserted `remove_every` steps ago.
                let (riv, rv) = model.remove(model.len() / 2);
                prop_assert_eq!(tree.remove(riv, &rv), true, "remove {:?}", riv);
            }
            prop_assert_eq!(tree.len(), model.len());
            let expect = model.iter().filter(|(iv, _)| iv.overlaps(&q)).count();
            prop_assert_eq!(tree.count_overlaps(q), expect);
        }
        // Drain fully: every remaining entry must be removable exactly once.
        for (iv, v) in model {
            prop_assert_eq!(tree.remove(iv, &v), true);
            prop_assert_eq!(tree.remove(iv, &v), false);
        }
        prop_assert_eq!(tree.len(), 0);
    }

    #[cases(128)]
    fn dynamic_tree_visit_order_is_sorted(raw in arb_intervals(40)) {
        let mut tree: DynamicIntervalTree<i64, usize> = DynamicIntervalTree::new();
        for (iv, v) in to_entries(&raw) {
            tree.insert(iv, v);
        }
        let mut keys: Vec<(i64, i64, usize)> = Vec::new();
        tree.for_each_overlap(Interval::new(i64::MIN / 2, i64::MAX / 2), |iv, &v| {
            keys.push((iv.start, iv.end, v));
        });
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(keys, sorted);
    }

    #[cases(256)]
    fn fold_visits_the_same_set_as_count(
        raw in arb_intervals(48),
        qs in -1_200i64..1_200,
        qlen in 0i64..300
    ) {
        let tree = IntervalTree::new(to_entries(&raw));
        let q = Interval::new(qs, qs + qlen);
        let folded: usize = tree.fold_overlap(q, 0usize, |acc, _, _| acc + 1);
        prop_assert_eq!(folded, tree.count_overlaps(q));
    }
}
