//! Scoped-thread data parallelism (the workspace's `rayon` replacement).
//!
//! All helpers split the work into contiguous blocks, one per worker, and
//! reassemble results in input order, so output is bit-identical for any
//! thread count — the determinism guarantee the end-to-end tests assert.
//!
//! The worker count is `min(TROUT_THREADS, work items)`, falling back to
//! `std::thread::available_parallelism()` when the variable is unset or
//! unparsable. `TROUT_THREADS=1` forces fully serial execution.

use std::panic;

/// Number of worker threads to use for `items` units of work.
pub fn thread_count(items: usize) -> usize {
    let configured = std::env::var("TROUT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    configured.min(items).max(1)
}

/// Parallel map over a slice, preserving order.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let threads = thread_count(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let block = items.len().div_ceil(threads);
    let f = &f;
    let mut out: Vec<Vec<U>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(block)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.push(h.join().unwrap_or_else(|e| panic::resume_unwind(e)));
        }
    });
    out.into_iter().flatten().collect()
}

/// Parallel map over the index range `0..n`, preserving order.
pub fn par_map_range<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    let threads = thread_count(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let block = n.div_ceil(threads);
    let f = &f;
    let mut out: Vec<Vec<U>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .step_by(block)
            .map(|lo| {
                let hi = (lo + block).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<U>>())
            })
            .collect();
        for h in handles {
            out.push(h.join().unwrap_or_else(|e| panic::resume_unwind(e)));
        }
    });
    out.into_iter().flatten().collect()
}

/// Runs `f(chunk_index, chunk)` over every complete `size`-element chunk of
/// `data` (trailing partial chunks are ignored, matching
/// `chunks_exact_mut`), in parallel.
pub fn par_chunks_mut<T: Send>(data: &mut [T], size: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    assert!(size > 0, "chunk size must be positive");
    let nchunks = data.len() / size;
    let threads = thread_count(nchunks);
    if threads <= 1 {
        for (i, c) in data.chunks_exact_mut(size).enumerate() {
            f(i, c);
        }
        return;
    }
    let per_thread = nchunks.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let mut rest = &mut data[..nchunks * size];
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = (per_thread * size).min(rest.len());
            let (block, tail) = rest.split_at_mut(take);
            rest = tail;
            s.spawn(move || {
                for (j, c) in block.chunks_exact_mut(size).enumerate() {
                    f(base + j, c);
                }
            });
            base += take / size;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1_000).collect();
        let got = par_map(&items, |&x| x * x);
        let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_range_matches_serial() {
        let got = par_map_range(513, |i| i as i64 - 7);
        let want: Vec<i64> = (0..513).map(|i| i as i64 - 7).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[5u8], |&x| x + 1), vec![6]);
    }

    #[test]
    fn par_chunks_mut_touches_only_complete_chunks() {
        let mut data: Vec<usize> = vec![0; 10];
        par_chunks_mut(&mut data, 3, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 0]);
    }

    #[test]
    fn par_chunks_mut_matches_serial_for_large_input() {
        let n = 257;
        let size = 5;
        let mut a: Vec<u64> = (0..(n * size) as u64).collect();
        let mut b = a.clone();
        par_chunks_mut(&mut a, size, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = v.wrapping_mul(i as u64 + 1);
            }
        });
        for (i, c) in b.chunks_exact_mut(size).enumerate() {
            for v in c.iter_mut() {
                *v = v.wrapping_mul(i as u64 + 1);
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                assert!(x != 40, "boom at 40");
                x
            })
        });
        assert!(result.is_err());
    }
}
