//! Injectable monotonic time.
//!
//! The serve scheduler makes *decisions* from the clock — when a coalescing
//! window must flush, whether a lane's budget can absorb another request —
//! and decisions must be reproducible under test. [`Clock`] abstracts the
//! single operation those decisions need (microseconds since an arbitrary
//! origin); [`MonotonicClock`] reads `std::time::Instant` in production and
//! [`ManualClock`] is a hand-cranked counter for deterministic tests: a test
//! advances time explicitly, so a scheduling trace replays bit-for-bit on
//! any machine at any load.
//!
//! Purely observational timing (latency histograms) may keep reading
//! `Instant` directly — only time that feeds back into *behavior* must go
//! through the trait.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic microseconds since an arbitrary per-clock origin.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current instant in microseconds. Monotone non-decreasing.
    fn now_micros(&self) -> u64;
}

/// The production clock: `Instant::now()` against a fixed origin.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is the moment of construction.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A deterministic test clock: time moves only when the test says so.
///
/// Shared freely (interior mutability), so a test can hold one handle while
/// the system under test holds another.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A clock at instant 0.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// A clock starting at `micros`.
    pub fn at(micros: u64) -> ManualClock {
        ManualClock {
            micros: AtomicU64::new(micros),
        }
    }

    /// Advances time by `delta` microseconds.
    pub fn advance(&self, delta: u64) {
        self.micros.fetch_add(delta, Ordering::SeqCst);
    }

    /// Jumps to `micros` (must not move backwards; monotonicity is the
    /// trait's one promise).
    pub fn set(&self, micros: u64) {
        let prev = self.micros.swap(micros, Ordering::SeqCst);
        debug_assert!(prev <= micros, "ManualClock moved backwards");
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance(250);
        assert_eq!(c.now_micros(), 250);
        c.advance(0);
        assert_eq!(c.now_micros(), 250);
        c.set(1_000);
        assert_eq!(c.now_micros(), 1_000);
        let d = ManualClock::at(77);
        assert_eq!(d.now_micros(), 77);
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<Box<dyn Clock>> = vec![
            Box::new(MonotonicClock::new()),
            Box::new(ManualClock::at(5)),
        ];
        assert!(clocks[1].now_micros() == 5);
        let _ = clocks[0].now_micros();
    }
}
