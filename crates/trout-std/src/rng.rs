//! Deterministic pseudo-random generators (the workspace's `rand`
//! replacement). [`SplitMix64`] is the workhorse used by workload
//! generation, SMOTE, kNN tie-breaking and NN weight initialization;
//! [`Pcg32`] is a second, statistically independent family used where a
//! stream must not correlate with SplitMix output (e.g. stress tests of
//! the property harness itself).

/// SplitMix64: a tiny, high-quality, splittable pseudo-random generator
/// (Steele, Lea & Flood, OOPSLA 2014). Used everywhere a deterministic,
/// seed-reproducible stream is needed — weight initialization, dropout masks,
/// SMOTE sampling — so that every figure in `EXPERIMENTS.md` regenerates
/// identically from its recorded seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Debiased multiply-shift (Lemire 2019).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.next_below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        // Draw u1 in (0,1] to keep ln finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Exponential sample with the given rate (inverse-CDF method).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Forks an independent generator (the "split" in SplitMix).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (floyd's algorithm for small
    /// k, shuffle for large k). Order of the result is unspecified.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        if k * 4 >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            self.shuffle(&mut idx);
            idx.truncate(k);
            idx
        } else {
            // Floyd's subset sampling: O(k) expected with a small seen set.
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = self.next_below(j as u64 + 1) as usize;
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            chosen
        }
    }
}

/// PCG32 (XSH-RR variant, O'Neill 2014): 64-bit state, 32-bit output.
/// A second generator family whose streams are independent of
/// [`SplitMix64`]'s for the same seed.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    const MULT: u64 = 6_364_136_223_846_793_005;

    /// Creates a generator from a seed and stream id.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(Self::MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next raw 64-bit output (two 32-bit draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_roughly_uniform() {
        let mut rng = SplitMix64::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = SplitMix64::new(21);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range_i64(-3, 3);
            assert!((-3..3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::new(33);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SplitMix64::new(11);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = SplitMix64::new(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<u32>>(),
            "shuffle left slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SplitMix64::new(5);
        for (n, k) in [(100, 5), (100, 80), (10, 10), (1, 1), (5, 0)] {
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(123);
        let mut child = parent.split();
        // The two streams should not be identical.
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn pcg32_is_deterministic_and_differs_from_splitmix() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 1);
        let mut sm = SplitMix64::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| sm.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn pcg32_streams_are_distinct() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 2);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(xs, ys);
    }
}
