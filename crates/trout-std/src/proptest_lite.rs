//! Seeded property testing with bounded shrinking (the workspace's
//! `proptest` replacement).
//!
//! A property test draws `cases` random inputs from a [`Strategy`], runs
//! the body on each, and on failure greedily shrinks the input before
//! panicking with the failing seed and the shrunk input. Runs are fully
//! deterministic: every suite has a fixed default seed, overridable with
//! `TROUT_PROPTEST_SEED` (and `TROUT_PROPTEST_CASES` for the case count).
//! The failure message names the exact seed that reproduces the case.
//!
//! ```ignore
//! proptest_lite! {
//!     #[cases(256)]
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

use crate::rng::SplitMix64;
use std::panic::{self, AssertUnwindSafe};

/// Default number of cases when `#[cases(..)]` is omitted.
pub const DEFAULT_CASES: u32 = 256;

/// Default base seed for every suite (override with `TROUT_PROPTEST_SEED`).
pub const DEFAULT_SEED: u64 = 0x7260_7574_7465_7374; // "trouttest"

/// Upper bound on shrink candidates evaluated per failure.
const MAX_SHRINK_STEPS: usize = 512;

/// Outcome of a single test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property does not hold for this input.
    Fail(String),
    /// The input does not satisfy a `prop_assume!` precondition; the case
    /// is skipped without counting as a failure.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type of a property body.
pub type CaseResult = Result<(), TestCaseError>;

/// A generator of random test inputs with optional shrinking.
///
/// `shrink` returns candidate simplifications of a failing value, simplest
/// first; every candidate must stay inside the strategy's domain so
/// shrinking never manufactures inputs the generator could not produce.
pub trait Strategy {
    /// The generated input type.
    type Value: Clone + std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SplitMix64) -> Self::Value;

    /// Candidate simplifications of `value` (may be empty).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut SplitMix64) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = rng.next_below(span as u64) as i128;
                    ((self.start as i128) + off) as $ty
                }

                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    let mut out = Vec::new();
                    let lo = self.start;
                    let v = *value;
                    if v > lo {
                        out.push(lo);
                        let mid = lo + (v - lo) / 2;
                        if mid != lo && mid != v {
                            out.push(mid);
                        }
                        if v - 1 != lo && (out.is_empty() || *out.last().unwrap() != v - 1) {
                            out.push(v - 1);
                        }
                    }
                    out
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut SplitMix64) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = rng.next_below(span as u64) as i128;
                    ((lo as i128) + off) as $ty
                }

                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    (*self.start()..value.wrapping_add(1).max(*value)).shrink(value)
                }
            }
        )+
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut SplitMix64) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * (rng.next_f64() as $ty)
                }

                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    let lo = self.start;
                    let v = *value;
                    let mut out = Vec::new();
                    if v > lo {
                        out.push(lo);
                        let mid = lo + (v - lo) / 2.0;
                        if mid > lo && mid < v {
                            out.push(mid);
                        }
                    }
                    out
                }
            }
        )+
    };
}

impl_float_range_strategy!(f32, f64);

/// A strategy that always yields the same value.
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SplitMix64) -> T {
        self.0.clone()
    }
}

/// A strategy built from a closure; no shrinking.
pub struct FromFn<F>(F);

/// Wraps a closure as a [`Strategy`] (for domain-specific generators).
pub fn from_fn<T, F>(f: F) -> FromFn<F>
where
    T: Clone + std::fmt::Debug,
    F: Fn(&mut SplitMix64) -> T,
{
    FromFn(f)
}

impl<T, F> Strategy for FromFn<F>
where
    T: Clone + std::fmt::Debug,
    F: Fn(&mut SplitMix64) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut SplitMix64) -> T {
        (self.0)(rng)
    }
}

/// A strategy for `Vec<T>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

/// Vectors of `elem`-generated values with length in `len` (inclusive of
/// the start, exclusive of the end, like `proptest::collection::vec`).
pub fn vec_of<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy {
        elem,
        min_len: len.start,
        max_len: len.end - 1,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SplitMix64) -> Vec<S::Value> {
        let len = self.min_len + rng.next_below((self.max_len - self.min_len + 1) as u64) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let n = value.len();
        // Structural shrinks first: halves, then dropping single elements.
        if n > self.min_len {
            let half = (n / 2).max(self.min_len);
            if half < n {
                out.push(value[..half].to_vec());
                out.push(value[n - half..].to_vec());
            }
            for i in 0..n.min(8) {
                let mut smaller = value.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // Element-wise shrinks on a few positions.
        for i in 0..n.min(8) {
            for cand in self.elem.shrink(&value[i]).into_iter().take(2) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident / $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx).into_iter().take(3) {
                            let mut v = value.clone();
                            v.$idx = cand;
                            out.push(v);
                        }
                    )+
                    out
                }
            }
        )+
    };
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

/// Resolves the case count: env override, then the macro's `#[cases(..)]`
/// attribute, then [`DEFAULT_CASES`].
pub fn resolve_cases(attr: Option<u32>) -> u32 {
    std::env::var("TROUT_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .or(attr)
        .unwrap_or(DEFAULT_CASES)
}

fn base_seed() -> u64 {
    std::env::var("TROUT_PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Seed for case `i` of a run with base seed `base`. Case 0 uses the base
/// seed itself, so rerunning with `TROUT_PROPTEST_SEED=<reported seed>`
/// replays a reported failure as the first case.
fn case_seed(base: u64, i: u32) -> u64 {
    base.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn run_case<V>(test: &impl Fn(&V) -> CaseResult, value: &V) -> CaseResult {
    match panic::catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic (non-string payload)".to_string());
            Err(TestCaseError::fail(format!("panic: {msg}")))
        }
    }
}

/// Runs a property test: `cases` seeded inputs from `strategy` through
/// `test`, shrinking the first failure and panicking with a reproducible
/// report. This is the engine behind [`proptest_lite!`](crate::proptest_lite).
pub fn run_test<S: Strategy>(
    name: &str,
    cases: u32,
    strategy: &S,
    test: impl Fn(&S::Value) -> CaseResult,
) {
    let base = base_seed();
    let mut rejected = 0u32;
    for i in 0..cases {
        let seed = case_seed(base, i);
        let mut rng = SplitMix64::new(seed);
        let value = strategy.generate(&mut rng);
        match run_case(&test, &value) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => {
                rejected += 1;
                continue;
            }
            Err(TestCaseError::Fail(msg)) => {
                let (shrunk, steps) = shrink_failure(strategy, &test, value);
                panic!(
                    "property `{name}` failed (case {i}/{cases}, seed {seed})\n\
                     \x20 cause: {msg}\n\
                     \x20 shrunk input ({steps} shrink steps): {shrunk:?}\n\
                     \x20 reproduce with: TROUT_PROPTEST_SEED={seed} TROUT_PROPTEST_CASES=1 cargo test {name}"
                );
            }
        }
    }
    assert!(
        rejected < cases,
        "property `{name}`: every case rejected by prop_assume! (seed {base})"
    );
}

fn shrink_failure<S: Strategy>(
    strategy: &S,
    test: &impl Fn(&S::Value) -> CaseResult,
    mut current: S::Value,
) -> (S::Value, usize) {
    let mut evaluated = 0usize;
    loop {
        let mut improved = false;
        for cand in strategy.shrink(&current) {
            if evaluated >= MAX_SHRINK_STEPS {
                return (current, evaluated);
            }
            evaluated += 1;
            if matches!(run_case(test, &cand), Err(TestCaseError::Fail(_))) {
                current = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return (current, evaluated);
        }
    }
}

/// Declares property tests. Each entry becomes a `#[test]` that draws
/// inputs from the listed strategies; `#[cases(N)]` sets the case count.
#[macro_export]
macro_rules! proptest_lite {
    ($( $(#[cases($cases:expr)])? fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            #[test]
            fn $name() {
                let __attr_cases: Option<u32> = $crate::proptest_lite::__first(&[$($cases as u32,)?]);
                let __cases = $crate::proptest_lite::resolve_cases(__attr_cases);
                let __strategy = ($($strat,)+);
                $crate::proptest_lite::run_test(
                    stringify!($name),
                    __cases,
                    &__strategy,
                    |__value| {
                        #[allow(unused_parens, unused_variables, unused_mut)]
                        let ($(mut $arg,)+) = __value.clone();
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )+
    };
}

/// Macro support: first element of a zero-or-one element list.
pub fn __first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

/// Asserts a condition inside a property body, recording the failing
/// expression (and optional formatted message) without unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::proptest_lite::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::proptest_lite::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::proptest_lite::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::proptest_lite::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::proptest_lite::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = (0u64..1000, vec_of(0i64..100, 1..10));
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let strat = 10u32..20;
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let strat = -1.0f32..1.0;
        let mut rng = SplitMix64::new(2);
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = vec_of(0u64..5, 2..6);
        let mut rng = SplitMix64::new(3);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn shrinking_reaches_a_small_counterexample() {
        // Failure condition v >= 10 over 0..1000 should shrink to exactly 10.
        let strat = 0u64..1000;
        let test = |v: &u64| -> CaseResult {
            if *v >= 10 {
                Err(TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        };
        let (shrunk, _) = shrink_failure(&strat, &test, 937);
        assert_eq!(shrunk, 10);
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let strat = vec_of(0u64..10, 3..8);
        let value = vec![1, 2, 3, 4, 5];
        for cand in strat.shrink(&value) {
            assert!(cand.len() >= 3, "shrank below min length: {cand:?}");
        }
    }

    #[test]
    fn failing_property_reports_seed_and_shrunk_input() {
        let err = std::panic::catch_unwind(|| {
            run_test("demo_prop", 64, &(0u64..100), |v| {
                if *v > 50 {
                    Err(TestCaseError::fail("v too large"))
                } else {
                    Ok(())
                }
            })
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("TROUT_PROPTEST_SEED="), "{msg}");
        assert!(msg.contains("shrunk input"), "{msg}");
        assert!(
            msg.contains("51"),
            "expected minimal counterexample 51 in: {msg}"
        );
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let err = std::panic::catch_unwind(|| {
            run_test("panic_prop", 16, &(0u64..10), |v| {
                assert!(*v < 100, "impossible");
                if *v >= 0 {
                    panic!("boom {v}");
                }
                #[allow(unreachable_code)]
                Ok(())
            })
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("panic: boom"), "{msg}");
    }

    proptest_lite! {
        #[cases(64)]
        fn macro_harness_runs(a in 0u64..100, b in 0u64..100) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a < 100 && b < 100, "out of range: {a} {b}");
        }

        fn macro_assume_skips(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
