//! Minimal nonblocking event-loop substrate: `poll(2)` readiness,
//! `O_NONBLOCK` via `fcntl(2)`, and a self-pipe waker — the primitives the
//! serve reactor multiplexes hundreds of connections on.
//!
//! The hermetic-build policy rules out tokio/mio, and `std::net` only
//! exposes `set_nonblocking` per socket — there is no portable readiness
//! API in the standard library at all. This module supplies the missing
//! piece through the thinnest possible libc FFI: three `extern "C"`
//! declarations (`poll`, `fcntl`, `pipe`), the `pollfd` struct, and the
//! handful of flag constants the reactor needs. Everything above this layer
//! is safe Rust over `RawFd`s.
//!
//! Scope is deliberately Linux/Unix: `poll(2)` is POSIX and present on every
//! platform this workspace targets. Scaling past a few thousand fds would
//! want `epoll`, but `poll` keeps the FFI surface tiny and the per-iteration
//! cost is linear in *registered* fds, which a sharded reactor keeps small
//! per thread.

use std::io;
use std::os::unix::io::RawFd;

/// Readable readiness (data, EOF, or a pending accept).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (the send buffer has room again).
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (revents only — a bug in the caller's bookkeeping).
pub const POLLNVAL: i16 = 0x020;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

/// `struct pollfd` from `<poll.h>`, bit-compatible with the kernel ABI.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch (negative entries are ignored by the
    /// kernel — the idiom for a registered-but-muted slot).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events (filled by [`poll_fds`]).
    pub revents: i16,
}

impl PollFd {
    /// A slot watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any requested or error condition fired.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }

    /// Readable (or EOF/err, which reads also observe).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Writable.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// Hard error or bookkeeping bug on this fd.
    pub fn error(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, ...) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// Blocks until at least one registered fd is ready (or `timeout_ms`
/// elapses; negative = wait forever). Returns how many slots have nonzero
/// `revents`. `EINTR` retries transparently — a signal is not readiness.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Sets `O_NONBLOCK` on any fd via `fcntl(F_GETFL/F_SETFL)` — works on
/// sockets, pipes, anything, where `std` only covers its own socket types.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { fcntl(fd, F_GETFL) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if flags & O_NONBLOCK != 0 {
        return Ok(());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// A self-pipe waker: the read end sits in a reactor thread's poll set, any
/// other thread wakes it by writing one byte. Nonblocking on both ends so a
/// burst of wakes can never block the waker (the pipe being full already
/// guarantees a pending readiness event) and draining can never block the
/// reactor.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

// RawFds are just integers; the kernel serializes pipe reads/writes.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Creates the pipe pair, both ends nonblocking.
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let (read_fd, write_fd) = (fds[0], fds[1]);
        for fd in [read_fd, write_fd] {
            if let Err(e) = set_nonblocking(fd) {
                unsafe {
                    close(read_fd);
                    close(write_fd);
                }
                return Err(e);
            }
        }
        Ok(Waker { read_fd, write_fd })
    }

    /// The fd to register with [`POLLIN`] in the reactor's poll set.
    pub fn poll_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the poller. A full pipe means a wake is already pending, so
    /// `EAGAIN` is success, not failure.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe {
            let _ = write(self.write_fd, &byte, 1);
        }
    }

    /// Drains every pending wake byte (call once per readiness event).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn waker_readiness_round_trip() {
        let w = Waker::new().unwrap();
        // Nothing pending: poll times out with zero ready slots.
        let mut fds = [PollFd::new(w.poll_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].ready());

        // A wake makes the read end readable; draining clears it.
        w.wake();
        w.wake(); // coalesces — still one readiness event
        let mut fds = [PollFd::new(w.poll_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
        w.drain();
        let mut fds = [PollFd::new(w.poll_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
    }

    #[test]
    fn nonblocking_socket_read_returns_would_block() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        set_nonblocking(server.as_raw_fd()).unwrap();

        // Empty socket: the read must not block.
        let mut buf = [0u8; 16];
        let err = server.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);

        // Data arrives: poll reports readable, the read drains it.
        let mut c = client;
        c.write_all(b"hi").unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
        assert_eq!(server.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"hi");
    }

    #[test]
    fn poll_reports_writable_and_hup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        // A fresh socket's send buffer is writable.
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].writable());

        // Peer closes: POLLIN fires (EOF is a read event).
        drop(client);
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn negative_fd_slots_are_ignored() {
        // The kernel idiom for muting a slot without reshuffling the array.
        let w = Waker::new().unwrap();
        w.wake();
        let mut fds = [PollFd::new(-1, POLLIN), PollFd::new(w.poll_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(!fds[0].ready());
        assert!(fds[1].readable());
    }
}
