//! Zero-dependency substrate for the TROUT workspace.
//!
//! Every crate in this workspace builds fully offline: the five external
//! crates the seed depended on are replaced by small in-repo equivalents,
//! all gathered here so the policy is auditable in one place:
//!
//! * [`rng`] — SplitMix64 and PCG32 deterministic generators (replaces
//!   `rand`); every experiment is reproducible bit-for-bit from a seed.
//! * [`par`] — scoped-thread data parallelism honouring `TROUT_THREADS`
//!   (replaces `rayon`); results are identical for any thread count.
//! * [`json`] — a minimal JSON value, parser and writer plus the
//!   [`json::ToJson`]/[`json::FromJson`] traits and the
//!   [`impl_json_struct!`]/[`impl_json_enum!`] macros (replaces `serde` +
//!   `serde_json` for checkpoints, traces and bench results).
//! * [`proptest_lite`] — a seeded property-test harness with bounded
//!   shrinking and failing-seed reproduction (replaces `proptest`).
//! * [`bench`] — a wall-clock micro-benchmark harness with a
//!   criterion-shaped API, emitting `BENCH_*.json` reports (replaces
//!   `criterion`).
//! * [`fsio`] — durable file I/O (atomic replace, torn-tail-safe appends)
//!   backing the serve daemon's write-ahead journal and snapshots.
//! * [`evloop`] — `poll(2)` readiness, `O_NONBLOCK`, and a self-pipe waker
//!   through thin libc FFI (replaces tokio/mio for the serve reactor).
//! * [`clock`] — injectable monotonic time ([`clock::Clock`]) with a
//!   deterministic [`clock::ManualClock`], so scheduling decisions that
//!   depend on time stay reproducible under test.
//!
//! Hermetic-build policy: no new external crates may be added to the
//! workspace without an issue justifying them; extend this crate instead.

pub mod alloc_count;
pub mod bench;
pub mod clock;
pub mod evloop;
pub mod fsio;
pub mod json;
pub mod par;
pub mod proptest_lite;
pub mod rng;
