//! Minimal JSON value, parser and writer plus the [`ToJson`]/[`FromJson`]
//! traits (the workspace's `serde`/`serde_json` replacement).
//!
//! Structs and unit-variant enums get their impls from
//! [`impl_json_struct!`](crate::impl_json_struct) and
//! [`impl_json_enum!`](crate::impl_json_enum); data-carrying enum variants
//! are implemented by hand in their defining crates. The wire format
//! follows serde's defaults (struct → object keyed by field name, unit
//! variant → string, data variant → externally tagged object), so
//! checkpoints written by the seed code parse unchanged.
//!
//! Numbers: integers are kept as `i128` so `u64` seeds and job ids round
//! trip exactly; floats write their shortest round-trip decimal form, with
//! `f32` widened to `f64` first so the reparsed value is bit-identical.
//! Non-finite floats serialize as `null` and parse back as NaN.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no `.` or exponent).
    Int(i128),
    /// A floating-point literal.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError(msg.into())
    }

    /// Wraps the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        JsonError(format!("{field}: {}", self.0))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!("trailing data at byte {}", p.pos)));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable access to an object's members.
    pub fn as_object_mut(&mut self) -> Option<&mut Vec<(String, Json)>> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Removes (and returns) an object member by key.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        let members = self.as_object_mut()?;
        let i = members.iter().position(|(k, _)| k == key)?;
        Some(members.remove(i).1)
    }

    /// The members of an object, or an error naming the expected type.
    pub fn expect_obj(&self, what: &str) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(members) => Ok(members),
            other => Err(JsonError::new(format!(
                "{what}: expected object, got {}",
                other.kind()
            ))),
        }
    }

    /// The elements of an array, or an error naming the expected type.
    pub fn expect_arr(&self, what: &str) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::new(format!(
                "{what}: expected array, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "integer",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let s = x.to_string();
                    out.push_str(&s);
                    // Keep a float marker so integral floats stay floats.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // serde_json refuses NaN/inf; we degrade to null (read
                    // back as NaN) so a poisoned model still checkpoints.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(JsonError::new("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.depth += 1;
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => {
                            return Err(JsonError::new(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
                self.depth -= 1;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.depth += 1;
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => {
                            return Err(JsonError::new(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
                self.depth -= 1;
                Ok(Json::Obj(members))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("invalid number '{text}' at byte {start}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| JsonError::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "invalid escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(text, 16).map_err(|_| JsonError::new("invalid \\u escape"))
    }
}

/// Serialization into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;

    /// Convenience: the compact JSON text.
    fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

/// Deserialization from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs a value from JSON.
    fn from_json(j: &Json) -> Result<Self, JsonError>;

    /// Reconstructs from an optional object member. The default requires
    /// the field to be present; `Option<T>` overrides this so missing
    /// members read as `None` (serde's behaviour for `Option` fields).
    fn from_json_field(v: Option<&Json>, ctx: &str) -> Result<Self, JsonError> {
        match v {
            Some(j) => Self::from_json(j).map_err(|e| e.in_field(ctx)),
            None => Err(JsonError::new(format!("missing field {ctx}"))),
        }
    }

    /// Convenience: parse text then convert.
    fn from_json_str(s: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(s)?)
    }
}

macro_rules! impl_json_int {
    ($($ty:ty),+) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> Json {
                    Json::Int(*self as i128)
                }
            }
            impl FromJson for $ty {
                fn from_json(j: &Json) -> Result<Self, JsonError> {
                    match j {
                        Json::Int(i) => <$ty>::try_from(*i)
                            .map_err(|_| JsonError::new(format!("{} out of range for {}", i, stringify!($ty)))),
                        Json::Num(x) if x.fract() == 0.0 => Ok(*x as $ty),
                        other => Err(JsonError::new(format!("expected integer, got {}", other.kind()))),
                    }
                }
            }
        )+
    };
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Num(x) => Ok(*x),
            Json::Int(i) => Ok(*i as f64),
            Json::Null => Ok(f64::NAN),
            other => Err(JsonError::new(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        // Widen so the decimal form is the exact f64 of this f32 — parsing
        // back and narrowing returns the identical bits.
        Json::Num(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        f64::from_json(j).map(|x| x as f32)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.expect_arr("Vec")?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }

    fn from_json_field(v: Option<&Json>, ctx: &str) -> Result<Self, JsonError> {
        match v {
            None => Ok(None),
            Some(j) => Self::from_json(j).map_err(|e| e.in_field(ctx)),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let items = j.expect_arr("pair")?;
        if items.len() != 2 {
            return Err(JsonError::new(format!(
                "expected 2-element array, got {}",
                items.len()
            )));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

/// Looks up `key` in an object's member list (macro support).
pub fn obj_get<'a>(members: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Implements [`ToJson`]/[`FromJson`] for a struct, serializing the listed
/// fields as a JSON object keyed by field name (serde's default layout).
/// Invoke in the crate that defines the type; private fields are fine.
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field)), )+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(j: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                let members = j.expect_obj(stringify!($ty))?;
                Ok($ty {
                    $( $field: $crate::json::FromJson::from_json_field(
                        $crate::json::obj_get(members, stringify!($field)),
                        concat!(stringify!($ty), ".", stringify!($field)),
                    )?, )+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum of unit variants,
/// serializing each as its name string (serde's default layout).
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $( $ty::$variant => $crate::json::Json::Str(stringify!($variant).to_string()), )+
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(j: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                match j {
                    $( $crate::json::Json::Str(s) if s == stringify!($variant) => Ok($ty::$variant), )+
                    other => Err($crate::json::JsonError::new(format!(
                        "invalid {} variant: {}", stringify!($ty), other
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Demo {
        name: String,
        count: u64,
        ratio: f32,
        tags: Vec<i64>,
        maybe: Option<f64>,
    }

    impl_json_struct!(Demo {
        name,
        count,
        ratio,
        tags,
        maybe
    });

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Mode {
        Fast,
        Careful,
    }

    impl_json_enum!(Mode { Fast, Careful });

    #[test]
    fn struct_round_trip_is_exact() {
        let d = Demo {
            name: "α \"quoted\"\nline".to_string(),
            count: u64::MAX,
            ratio: 0.1,
            tags: vec![-3, 0, 9_007_199_254_740_993],
            maybe: None,
        };
        let text = d.to_json_string();
        let back = Demo::from_json_str(&text).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn f32_round_trips_bit_exactly() {
        for bits in [
            0x3DCC_CCCDu32,
            0x0000_0001,
            0x7F7F_FFFF,
            0x8000_0000,
            0x4049_0FDB,
        ] {
            let x = f32::from_bits(bits);
            let text = x.to_json_string();
            let back = f32::from_json_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        assert_eq!(f64::NAN.to_json_string(), "null");
        assert!(f64::from_json_str("null").unwrap().is_nan());
    }

    #[test]
    fn missing_option_field_reads_as_none() {
        let back = Demo::from_json_str(r#"{"name":"x","count":1,"ratio":2.0,"tags":[]}"#).unwrap();
        assert_eq!(back.maybe, None);
    }

    #[test]
    fn missing_required_field_errors() {
        let err = Demo::from_json_str(r#"{"name":"x"}"#).unwrap_err();
        assert!(err.0.contains("Demo.count"), "{err}");
    }

    #[test]
    fn unit_enum_round_trips() {
        assert_eq!(Mode::Fast.to_json_string(), "\"Fast\"");
        assert_eq!(Mode::from_json_str("\"Careful\"").unwrap(), Mode::Careful);
        assert!(Mode::from_json_str("\"Slow\"").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = Json::parse(r#""aé\n\t\"\\A 😀""#).unwrap();
        assert_eq!(v, Json::Str("aé\n\t\"\\A 😀".to_string()));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\":}",
            "1 2",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_parse_by_shape() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("42.0").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::Int(u64::MAX as i128)
        );
    }

    #[test]
    fn object_helpers_work() {
        let mut v = Json::parse(r#"{"a":1,"b":2}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Int(1)));
        assert_eq!(v.remove("a"), Some(Json::Int(1)));
        assert_eq!(v.get("a"), None);
        assert_eq!(v.to_string(), r#"{"b":2}"#);
    }

    #[test]
    fn nested_value_round_trips_through_text() {
        let text = r#"{"cluster":{"name":"anvil","partitions":[{"name":"shared","whole_node":false}]},"records":[],"x":[1,2.5,null,true,"s"]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
