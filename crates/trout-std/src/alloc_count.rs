//! A counting global allocator for allocation-regression tests.
//!
//! The workspace's hot paths (training epochs, batched inference) are meant
//! to be allocation-free at steady state. Asserting that in a test needs a
//! global hook, so [`CountingAllocator`] wraps [`System`] and counts every
//! `alloc`/`realloc` call. A test binary opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: trout_std::alloc_count::CountingAllocator =
//!     trout_std::alloc_count::CountingAllocator::new();
//! ```
//!
//! and then brackets the region under test with [`CountingAllocator::count`]
//! (or reads [`allocations`] directly). Only counting happens here — no
//! interposition, no size tracking — so the overhead is one relaxed atomic
//! increment per allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of heap allocations (`alloc` + `realloc` calls) since process
/// start, as seen by every installed [`CountingAllocator`]. Monotone;
/// subtract two readings to count a region.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// [`System`] with an allocation counter. Install as `#[global_allocator]`
/// in the test binary that wants to assert allocation-freedom.
pub struct CountingAllocator;

impl CountingAllocator {
    /// A new counting allocator (stateless — the counter is global).
    pub const fn new() -> Self {
        CountingAllocator
    }

    /// Runs `f` and returns `(result, allocations during f)`.
    pub fn count<T>(f: impl FnOnce() -> T) -> (T, u64) {
        let before = allocations();
        let out = f();
        (out, allocations() - before)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

// SAFETY: delegates verbatim to `System`; the only addition is a relaxed
// counter increment, which cannot affect allocation correctness.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
