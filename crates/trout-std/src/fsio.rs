//! Durable file I/O: the crash-safety primitives behind the serve journal.
//!
//! Three guarantees matter for a write-ahead log and its snapshots, and the
//! standard library gives none of them by default:
//!
//! * **Atomic replace** — [`atomic_write`] writes a sibling temp file,
//!   fsyncs it, renames it over the target, then fsyncs the directory, so a
//!   crash leaves either the old file or the new one, never a torn mix.
//! * **Torn-tail discipline** — a crash mid-append leaves a partial final
//!   line. [`open_append_complete`] truncates an unterminated tail before
//!   reopening for append (the record was never acknowledged, so dropping it
//!   is correct), and [`read_complete_lines`] skips it on read.
//! * **Explicit sync points** — appends go straight to the `File` (no
//!   `BufWriter`), and callers choose when [`File::sync_data`] runs.
//!
//! Everything here is plain `std::io` so any crate in the workspace can
//! depend on it without cycles.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Fsyncs a directory so a rename or file creation inside it is durable.
/// On platforms where directories cannot be opened for sync this degrades
/// to a no-op error swallow — the data file itself is still synced.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Writes `bytes` to `path` atomically: temp sibling, fsync, rename over the
/// target, fsync the parent directory. A crash at any instant leaves either
/// the previous file intact or the new one complete.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_dir(dir)
}

/// Reads every newline-terminated line of `path`. A final unterminated
/// fragment (the signature of a crash mid-append) is **not** returned;
/// the second element reports how many bytes of torn tail were ignored.
pub fn read_complete_lines(path: &Path) -> io::Result<(Vec<String>, usize)> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    let complete = match text.rfind('\n') {
        Some(last) => &text[..=last],
        None => "",
    };
    let torn = text.len() - complete.len();
    Ok((complete.lines().map(|l| l.to_string()).collect(), torn))
}

/// Opens `path` for appending, creating it if missing. If the file ends in
/// a partial line (crash mid-append), the tail is truncated first so the
/// next append starts on a clean record boundary. Returns the file plus the
/// number of complete lines already present.
pub fn open_append_complete(path: &Path) -> io::Result<(File, u64)> {
    let mut f = OpenOptions::new()
        .read(true)
        .create(true)
        .append(true)
        .open(path)?;
    let mut text = String::new();
    f.read_to_string(&mut text)?;
    let keep = match text.rfind('\n') {
        Some(last) => last + 1,
        None => 0,
    };
    if keep < text.len() {
        truncate_sync(&mut f, keep as u64)?;
    }
    f.seek(SeekFrom::End(0))?;
    let lines = text[..keep].lines().count() as u64;
    Ok((f, lines))
}

/// Truncates `f` to `len` bytes and syncs the truncation to disk. Works on
/// files opened in append mode (append mode only redirects *writes* to the
/// end; `set_len` is unaffected). `len == 0` is valid and leaves an empty
/// file — the caller's record count is then zero, not an error.
pub fn truncate_sync(f: &mut File, len: u64) -> io::Result<()> {
    f.set_len(len)?;
    f.sync_data()
}

/// Appends one line (a trailing `\n` is added) to an already-open file.
pub fn append_line(f: &mut File, line: &str) -> io::Result<()> {
    f.write_all(line.as_bytes())?;
    f.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("trout_fsio_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}", std::process::id()))
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let p = tmp("atomic");
        atomic_write(&p, b"first\n").unwrap();
        atomic_write(&p, b"second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "second\n");
        assert!(!p.with_extension("tmp").exists(), "temp file renamed away");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn read_complete_lines_drops_torn_tail() {
        let p = tmp("torn_read");
        std::fs::write(&p, "a\nb\ntorn-frag").unwrap();
        let (lines, torn) = read_complete_lines(&p).unwrap();
        assert_eq!(lines, vec!["a", "b"]);
        assert_eq!(torn, "torn-frag".len());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn open_append_truncates_torn_tail_and_counts_lines() {
        let p = tmp("torn_append");
        std::fs::write(&p, "a\nb\npartial").unwrap();
        let (mut f, lines) = open_append_complete(&p).unwrap();
        assert_eq!(lines, 2);
        append_line(&mut f, "c").unwrap();
        drop(f);
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "a\nb\nc\n");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn open_append_torn_only_line_truncates_to_empty() {
        // A crash during the very first append leaves a file holding nothing
        // but the torn fragment. Reopen must truncate to an *empty* file and
        // report zero complete lines — not error — so recovery can proceed
        // from the snapshot watermark alone.
        let p = tmp("torn_only");
        std::fs::write(&p, "partial-no-newline").unwrap();
        let (mut f, lines) = open_append_complete(&p).unwrap();
        assert_eq!(lines, 0);
        assert_eq!(f.metadata().unwrap().len(), 0, "truncated to empty");
        append_line(&mut f, "first").unwrap();
        drop(f);
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "first\n");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn truncate_sync_shrinks_open_append_file() {
        let p = tmp("trunc");
        std::fs::write(&p, "aaaa\nbbbb\n").unwrap();
        let (mut f, lines) = open_append_complete(&p).unwrap();
        assert_eq!(lines, 2);
        truncate_sync(&mut f, 5).unwrap();
        drop(f);
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "aaaa\n");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn open_append_creates_missing_file() {
        let p = tmp("fresh");
        let _ = std::fs::remove_file(&p);
        let (mut f, lines) = open_append_complete(&p).unwrap();
        assert_eq!(lines, 0);
        append_line(&mut f, "x").unwrap();
        f.sync_data().unwrap();
        let (lines, torn) = read_complete_lines(&p).unwrap();
        assert_eq!((lines.len(), torn), (1, 0));
        std::fs::remove_file(&p).unwrap();
    }
}
