//! Wall-clock micro-benchmarking with a criterion-shaped API (the
//! workspace's `criterion` replacement).
//!
//! Bench targets are plain `harness = false` binaries built from
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main). Each benchmark calibrates
//! an iteration count until a sample takes long enough to time reliably,
//! collects `sample_size` samples, prints a one-line summary and appends
//! the result to a `BENCH_<group>.json` report under
//! `$TROUT_BENCH_OUT` (default `target/bench`).
//!
//! Setting `TROUT_BENCH_SMOKE=1` (or constructing with
//! [`Criterion::smoke`]) runs every benchmark for exactly one iteration
//! with no report, which is how the `bench_smoke` test suite exercises
//! bench code under `cargo test`.

use crate::json::Json;
use std::time::Instant;

/// Minimum sample duration the calibrator aims for, in nanoseconds.
const TARGET_SAMPLE_NS: u128 = 2_000_000;

/// Hard cap on calibrated iterations per sample.
const MAX_ITERS: u64 = 1 << 20;

/// Opaque value barrier preventing the optimizer from deleting bench
/// bodies (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered into the label (`name/param`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id labelled `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the body.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations and records
    /// the elapsed wall-clock time.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

#[derive(Clone)]
struct Measurement {
    label: String,
    sample_size: usize,
    iters: u64,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

impl Measurement {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("sample_size".into(), Json::Int(self.sample_size as i128)),
            ("iters_per_sample".into(), Json::Int(self.iters as i128)),
            ("mean_ns".into(), Json::Num(self.mean_ns)),
            ("min_ns".into(), Json::Num(self.min_ns)),
            ("max_ns".into(), Json::Num(self.max_ns)),
        ])
    }
}

/// Top-level bench context; hands out [`BenchmarkGroup`]s.
pub struct Criterion {
    smoke: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::var("TROUT_BENCH_SMOKE").is_ok_and(|v| v == "1");
        Criterion {
            smoke,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// A context that runs every benchmark once and writes no report.
    pub fn smoke() -> Self {
        Criterion {
            smoke: true,
            default_sample_size: 1,
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            smoke: self.smoke,
            results: Vec::new(),
            finished: false,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark (its own one-entry group).
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group(name);
        group.bench_function(name, f);
        group.finish();
        drop(group);
        self
    }
}

/// A named set of benchmarks sharing a sample size; writes one
/// `BENCH_<group>.json` report on [`finish`](BenchmarkGroup::finish).
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    smoke: bool,
    results: Vec<Measurement>,
    finished: bool,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark under this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run(id.label, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.label, |b| f(b, input));
        self
    }

    fn run(&mut self, label: String, mut body: impl FnMut(&mut Bencher)) {
        if self.smoke {
            let mut b = Bencher {
                iters: 1,
                elapsed_ns: 0,
            };
            body(&mut b);
            eprintln!("bench {}/{label}: smoke ok (1 iteration)", self.name);
            return;
        }
        // Calibrate: double iterations until one sample is long enough.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            body(&mut b);
            if b.elapsed_ns >= TARGET_SAMPLE_NS || iters >= MAX_ITERS {
                break;
            }
            iters *= 2;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            body(&mut b);
            per_iter.push(b.elapsed_ns as f64 / iters as f64);
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        eprintln!(
            "bench {}/{label}: mean {:.1} ns/iter (min {:.1}, max {:.1}, {} samples x {} iters)",
            self.name, mean, min, max, self.sample_size, iters
        );
        self.results.push(Measurement {
            label,
            sample_size: self.sample_size,
            iters,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        });
    }

    /// Writes the group's `BENCH_<group>.json` report.
    pub fn finish(&mut self) {
        if self.finished || self.smoke || self.results.is_empty() {
            self.finished = true;
            return;
        }
        self.finished = true;
        let report = Json::Obj(vec![
            ("group".into(), Json::Str(self.name.clone())),
            (
                "benchmarks".into(),
                Json::Arr(self.results.iter().map(Measurement::to_json).collect()),
            ),
        ]);
        write_report(&self.name, &report);
    }
}

/// Writes an arbitrary JSON payload as `BENCH_<name>.json` under
/// `$TROUT_BENCH_OUT` (default `target/bench`). Used by
/// [`BenchmarkGroup::finish`] and by harnesses whose reports carry more than
/// mean/min/max measurements (e.g. latency histograms). Returns the path on
/// success.
pub fn write_report(name: &str, payload: &Json) -> Option<String> {
    let dir = std::env::var("TROUT_BENCH_OUT").unwrap_or_else(|_| "target/bench".to_string());
    let sanitized: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = format!("{dir}/BENCH_{sanitized}.json");
    std::fs::create_dir_all(&dir).ok()?;
    match std::fs::write(&path, payload.to_string()) {
        Ok(()) => {
            eprintln!("bench {name}: report written to {path}");
            Some(path)
        }
        Err(e) => {
            eprintln!("bench {name}: could not write {path}: {e}");
            None
        }
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Defines a bench group function from one or more `fn(&mut Criterion)`
/// registrations (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_exactly_once() {
        let mut calls = 0u32;
        let mut c = Criterion::smoke();
        let mut g = c.benchmark_group("demo");
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_with_input_passes_the_input_through() {
        let mut c = Criterion::smoke();
        let mut g = c.benchmark_group("demo");
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("sq", 7u64), &7u64, |b, &n| {
            b.iter(|| seen = n * n)
        });
        g.finish();
        assert_eq!(seen, 49);
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        assert_eq!(BenchmarkId::new("query", 1024).label, "query/1024");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn measurement_serializes_to_json() {
        let m = Measurement {
            label: "q/1".to_string(),
            sample_size: 10,
            iters: 4,
            mean_ns: 12.5,
            min_ns: 10.0,
            max_ns: 15.0,
        };
        let j = m.to_json().to_string();
        assert!(j.contains("\"label\":\"q/1\""), "{j}");
        assert!(j.contains("\"mean_ns\":12.5"), "{j}");
    }
}
