//! End-to-end tests of the `trout` binary surface.

use std::path::PathBuf;
use std::process::{Command, Output};

fn trout(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_trout"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(name);
    p.to_string_lossy().into_owned()
}

#[test]
fn help_lists_subcommands() {
    let out = trout(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "simulate",
        "train",
        "predict",
        "whatif",
        "importance",
        "stats",
    ] {
        assert!(text.contains(cmd), "usage should mention {cmd}");
    }
}

#[test]
fn unknown_subcommand_fails_with_message() {
    let out = trout(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn missing_flag_fails_cleanly() {
    let out = trout(&["simulate", "--jobs", "10"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn simulate_stats_train_predict_whatif_pipeline() {
    let trace = tmp("pipeline-trace.csv");
    let model = tmp("pipeline-model.json");

    let out = trout(&[
        "simulate", "--jobs", "2500", "--seed", "14", "--out", &trace,
    ]);
    assert!(
        out.status.success(),
        "simulate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("2500 records"));

    let out = trout(&["stats", "--trace", &trace]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Requested Time (hr)"));
    assert!(text.contains("Jobs Submitted By User"));

    let out = trout(&["train", "--trace", &trace, "--out", &model, "--epochs", "4"]);
    assert!(
        out.status.success(),
        "train: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("holdout classifier accuracy"));

    let out = trout(&[
        "predict", "--model", &model, "--trace", &trace, "--job-id", "2400",
    ]);
    assert!(
        out.status.success(),
        "predict: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("Predicted to take less than") || text.contains("Predicted to start in"),
        "unexpected output: {text}"
    );

    let out = trout(&[
        "whatif",
        "--model",
        &model,
        "--trace",
        &trace,
        "--partition",
        "shared",
        "--cpus",
        "16",
        "--mem",
        "32",
        "--timelimit",
        "240",
    ]);
    assert!(
        out.status.success(),
        "whatif: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("hypothetical job"));
}

#[test]
fn predict_rejects_unknown_job() {
    let trace = tmp("reject-trace.csv");
    let model = tmp("reject-model.json");
    assert!(
        trout(&["simulate", "--jobs", "2500", "--seed", "14", "--out", &trace])
            .status
            .success()
    );
    assert!(
        trout(&["train", "--trace", &trace, "--out", &model, "--epochs", "3"])
            .status
            .success()
    );
    let out = trout(&[
        "predict", "--model", &model, "--trace", &trace, "--job-id", "999999",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not found"));
}

#[test]
fn eval_subcommand_prints_fold_table() {
    let trace = tmp("eval-trace.csv");
    assert!(
        trout(&["simulate", "--jobs", "3000", "--seed", "14", "--out", &trace])
            .status
            .success()
    );
    let out = trout(&["eval", "--trace", &trace, "--folds", "3", "--epochs", "4"]);
    assert!(
        out.status.success(),
        "eval: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("reg MAPE"));
    assert!(text.contains("mean regressor MAPE"));
    // Three fold rows.
    assert!(
        text.lines()
            .filter(|l| l.trim_start().starts_with(['1', '2', '3']))
            .count()
            >= 3
    );
}

#[test]
fn importance_subcommand_ranks_features() {
    let trace = tmp("imp-trace.csv");
    let model = tmp("imp-model.json");
    assert!(
        trout(&["simulate", "--jobs", "3000", "--seed", "14", "--out", &trace])
            .status
            .success()
    );
    assert!(
        trout(&["train", "--trace", &trace, "--out", &model, "--epochs", "4"])
            .status
            .success()
    );
    let out = trout(&[
        "importance",
        "--model",
        &model,
        "--trace",
        &trace,
        "--top",
        "5",
    ]);
    assert!(
        out.status.success(),
        "importance: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MAPE increase"));
    assert!(
        text.lines().count() >= 6,
        "expected header + 5 rows: {text}"
    );
}

#[test]
fn swf_traces_are_accepted_everywhere() {
    // Build a tiny SWF log by exporting a simulated trace.
    let swf_path = tmp("import.swf");
    let trace = trout_slurmsim::SimulationBuilder::anvil_like()
        .jobs(2_500)
        .seed(14)
        .run();
    std::fs::write(&swf_path, trout_slurmsim::swf::to_swf(&trace)).unwrap();

    let out = trout(&["stats", "--trace", &swf_path]);
    assert!(
        out.status.success(),
        "stats on swf: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("Requested Time (hr)"));

    let model = tmp("swf-model.json");
    let out = trout(&[
        "train", "--trace", &swf_path, "--out", &model, "--epochs", "3",
    ]);
    assert!(
        out.status.success(),
        "train on swf: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
