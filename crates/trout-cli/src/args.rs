//! Minimal `--flag value` option parsing (no third-party CLI dependency).

use trout_core::TroutError;

/// Parsed `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Options {
    pairs: Vec<(String, String)>,
}

fn config(msg: String) -> TroutError {
    TroutError::Config(msg)
}

impl Options {
    /// Parses `--flag value` tokens. A flag directly followed by another
    /// flag (or by the end of the line) is a bare boolean switch, stored as
    /// `"true"` — e.g. `trout serve --stdin`.
    pub fn parse(argv: &[String]) -> Result<Options, TroutError> {
        let mut pairs = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(config(format!("expected a --flag, got `{flag}`")));
            };
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            pairs.push((name.to_string(), value));
        }
        Ok(Options { pairs })
    }

    /// Raw string value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether a flag is present at all.
    pub fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, TroutError> {
        self.get(name)
            .ok_or_else(|| config(format!("missing required flag --{name}")))
    }

    /// Optional parsed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, TroutError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| config(format!("flag --{name}: cannot parse `{v}`"))),
        }
    }

    /// Required parsed flag.
    pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, TroutError> {
        let v = self.require(name)?;
        v.parse()
            .map_err(|_| config(format!("flag --{name}: cannot parse `{v}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(s: &[&str]) -> Result<Options, TroutError> {
        Options::parse(&s.iter().map(|v| v.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_flag_pairs() {
        let o = opts(&["--jobs", "100", "--seed", "7"]).unwrap();
        assert_eq!(o.get("jobs"), Some("100"));
        assert_eq!(o.get_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(o.get_or::<u64>("absent", 3).unwrap(), 3);
        assert!(o.has("jobs") && !o.has("absent"));
    }

    #[test]
    fn last_occurrence_wins() {
        let o = opts(&["--x", "1", "--x", "2"]).unwrap();
        assert_eq!(o.get("x"), Some("2"));
    }

    #[test]
    fn rejects_bare_values() {
        assert!(opts(&["jobs", "100"]).is_err());
    }

    #[test]
    fn bare_flags_are_boolean_switches() {
        let o = opts(&["--stdin", "--batch", "16", "--verbose"]).unwrap();
        assert!(o.has("stdin"));
        assert_eq!(o.get("stdin"), Some("true"));
        assert_eq!(o.get_or::<usize>("batch", 0).unwrap(), 16);
        assert!(o.has("verbose"));
    }

    #[test]
    fn reports_parse_failures_as_config_errors() {
        let o = opts(&["--jobs", "many"]).unwrap();
        let err = o.get_or::<usize>("jobs", 1).unwrap_err();
        assert!(matches!(err, TroutError::Config(_)));
        assert!(err.to_string().contains("--jobs"), "{err}");
    }

    #[test]
    fn require_reports_missing() {
        let o = opts(&[]).unwrap();
        let err = o.require("trace").unwrap_err();
        assert!(err.to_string().contains("--trace"), "{err}");
    }
}
