//! Minimal `--flag value` option parsing (no third-party CLI dependency).

/// Parsed `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Options {
    pairs: Vec<(String, String)>,
}

impl Options {
    /// Parses alternating `--flag value` tokens.
    pub fn parse(argv: &[String]) -> Result<Options, String> {
        let mut pairs = Vec::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected a --flag, got `{flag}`"));
            };
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} is missing a value"));
            };
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Options { pairs })
    }

    /// Raw string value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional parsed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse `{v}`")),
        }
    }

    /// Required parsed flag.
    pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let v = self.require(name)?;
        v.parse()
            .map_err(|_| format!("flag --{name}: cannot parse `{v}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(s: &[&str]) -> Result<Options, String> {
        Options::parse(&s.iter().map(|v| v.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_flag_pairs() {
        let o = opts(&["--jobs", "100", "--seed", "7"]).unwrap();
        assert_eq!(o.get("jobs"), Some("100"));
        assert_eq!(o.get_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(o.get_or::<u64>("absent", 3).unwrap(), 3);
    }

    #[test]
    fn last_occurrence_wins() {
        let o = opts(&["--x", "1", "--x", "2"]).unwrap();
        assert_eq!(o.get("x"), Some("2"));
    }

    #[test]
    fn rejects_bare_values_and_dangling_flags() {
        assert!(opts(&["jobs", "100"]).is_err());
        assert!(opts(&["--jobs"]).is_err());
    }

    #[test]
    fn reports_parse_failures() {
        let o = opts(&["--jobs", "many"]).unwrap();
        let err = o.get_or::<usize>("jobs", 1).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
    }

    #[test]
    fn require_reports_missing() {
        let o = opts(&[]).unwrap();
        assert!(o.require("trace").unwrap_err().contains("--trace"));
    }
}
