//! The `trout serve` daemon, the `trout events` replay-script generator,
//! and the `trout metrics` client for a running daemon.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;

use trout_core::error::{Result, TroutError};
use trout_core::online::OnlineConfig;
use trout_core::TroutConfig;
use trout_obs::log_info;
use trout_serve::{
    replay_script, run_reactor, run_stdin, run_tcp, ReactorConfig, ServeConfig, ShardSet,
};
use trout_std::json::Json;

use crate::args::Options;
use crate::commands::{load_model, load_trace};

/// `trout serve (--model MODEL.json --trace FILE | --bootstrap JOBS)
///              [--stdin | --listen ADDR [--reactor [--reactor-threads N]]]
///              [--shards N] [--batch N] [--refit-every N] [--infer-f32]
///              [--deadline-ms N] [--urgent-deadline-ms N]
///              [--batch-deadline-ms N] [--est-predict-us N]
///              [--state-dir DIR [--recover] [--snapshot-every N]
///               [--fsync-every N]]`
///
/// Builds the shard set (either from a trained model plus its training
/// trace, or self-bootstrapped from a fresh simulation), then serves the
/// ndjson protocol over stdin/stdout (the default) or a TCP listener.
///
/// `--shards N` runs N independent engines: lifecycle events broadcast to
/// every shard, predicts route by `hash(job_id) % N`, and the wire protocol
/// is unchanged. `--reactor` swaps the listener's thread-per-connection
/// transport for the `poll(2)` event loop (`--reactor-threads`, default
/// auto), multiplexing many connections per thread.
///
/// The scheduler flags tune the v2 predict SLO layer (DESIGN §12):
/// `--deadline-ms` / `--urgent-deadline-ms` / `--batch-deadline-ms` set the
/// default latency budget of the normal / urgent / batch lane (defaults
/// 500 / 50 / 5000) for predicts that name no explicit `deadline_ms`, and
/// `--est-predict-us` (default 150) is the per-prediction cost estimate
/// behind both the deadline-hold window and the admission-control shed
/// threshold.
///
/// `--infer-f32` serves predictions through the packed f32 fast path:
/// weights are transposed and batch norm folded once per model publish, and
/// the forward pass runs on the runtime-dispatched SIMD kernels
/// (overridable via `TROUT_SIMD=scalar|sse2|avx2`). Opt-in because packed
/// outputs are near- but not bit-identical to the exact path; journals,
/// snapshots and refits always use the exact model, so recovery only needs
/// the flag repeated to reproduce served answers.
///
/// With `--state-dir`, every accepted event is appended to a write-ahead
/// journal (fsynced per `--fsync-every`, default 1 = durable before each
/// acknowledgment) and a snapshot is written every `--snapshot-every`
/// events (default 1024; 0 = journal only). Each shard journals into its
/// own `shard-NNN/` subdirectory. After a crash, restarting with the
/// **same engine arguments** (including `--shards`) plus `--recover`
/// restores the exact state the crashed daemon had acknowledged.
pub fn serve(opts: &Options) -> Result<()> {
    let batch: usize = opts.get_or("batch", 32)?;
    let n_shards: usize = opts.get_or("shards", 1)?;
    if n_shards == 0 {
        return Err(TroutError::Config("--shards must be at least 1".into()));
    }
    let cfg = ServeConfig {
        refit_every: opts.get_or("refit-every", 256)?,
        seed: opts.get_or("seed", 0)?,
        infer_f32: opts.has("infer-f32"),
        ..Default::default()
    };
    // One startup line pins down which kernel tier this process dispatched
    // to (and therefore what TROUT_SIMD resolved to), for every mode.
    log_info!(
        "serve",
        "simd kernel tier: {} (best supported {}; override with TROUT_SIMD), inference {}",
        trout_linalg::SimdTier::active().name(),
        trout_linalg::SimdTier::best_supported().name(),
        if cfg.infer_f32 { "packed-f32" } else { "exact" }
    );

    let shards = if opts.has("bootstrap") {
        let jobs: usize = opts.require_parsed("bootstrap")?;
        log_info!(
            "serve",
            "bootstrapping {n_shards} shard(s) on a fresh {jobs}-job simulation (seed {})",
            cfg.seed
        );
        ShardSet::bootstrap(n_shards, jobs, &cfg)
    } else {
        let model = load_model(opts)?;
        let trace = load_trace(opts)?;
        log_info!(
            "serve",
            "loaded model, refitting scaler + runtime forest on {} trace records \
             ({n_shards} shard(s))",
            trace.records.len()
        );
        ShardSet::from_trace(
            n_shards,
            &trace,
            Some(model),
            TroutConfig::default(),
            OnlineConfig::default(),
            &cfg,
        )
    };

    let mut sched = trout_serve::SchedulerConfig::default();
    sched.default_deadline_ms = [
        opts.get_or("urgent-deadline-ms", sched.default_deadline_ms[0])?,
        opts.get_or("deadline-ms", sched.default_deadline_ms[1])?,
        opts.get_or("batch-deadline-ms", sched.default_deadline_ms[2])?,
    ];
    sched.est_predict_us = opts.get_or("est-predict-us", sched.est_predict_us)?;
    if sched.est_predict_us == 0 {
        return Err(TroutError::Config(
            "--est-predict-us must be at least 1".into(),
        ));
    }
    if sched.default_deadline_ms.contains(&0) {
        return Err(TroutError::Config(
            "lane deadlines must be at least 1 ms".into(),
        ));
    }
    let shards = shards.with_scheduler(sched);

    let fsync_every: u64 = opts.get_or("fsync-every", 1)?;
    for i in 0..shards.len() {
        shards.lock(i).online_config_mut().journal_fsync_every = fsync_every;
    }

    let recover = opts.has("recover");
    match opts.get("state-dir") {
        Some(dir) => {
            let snapshot_every: u64 = opts.get_or("snapshot-every", 1024)?;
            let reports = shards
                .open_state_dir(std::path::Path::new(dir), snapshot_every, recover)
                .map_err(|e| TroutError::Config(format!("state dir {dir}: {e}")))?;
            if recover {
                for (i, report) in reports.iter().enumerate() {
                    log_info!(
                        "serve",
                        "shard {i} recovered from {dir}: snapshot {}, {} of {} journal \
                         events replayed",
                        if report.snapshot_loaded {
                            "loaded"
                        } else {
                            "absent"
                        },
                        report.replayed,
                        report.journal_lines
                    );
                }
            } else {
                log_info!(
                    "serve",
                    "journaling {n_shards} shard(s) to {dir} (snapshot every {snapshot_every})"
                );
            }
        }
        None if recover => {
            return Err(TroutError::Config(
                "--recover requires --state-dir DIR".into(),
            ))
        }
        None => {}
    }

    match opts.get("listen") {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| TroutError::Config(format!("cannot listen on {addr}: {e}")))?;
            if opts.has("reactor") {
                let threads: usize = opts.get_or("reactor-threads", 0)?;
                log_info!(
                    "serve",
                    "listening on {addr} (reactor transport, {} thread(s))",
                    if threads == 0 {
                        "auto".to_string()
                    } else {
                        threads.to_string()
                    }
                );
                run_reactor(
                    Arc::new(shards),
                    listener,
                    ReactorConfig {
                        threads,
                        batch_max: batch,
                        max_conns: None,
                    },
                )
            } else {
                log_info!("serve", "listening on {addr}");
                run_tcp(Arc::new(shards), listener, batch, None)
            }
        }
        None => {
            log_info!("serve", "reading events from stdin (batch {batch})");
            let handled = run_stdin(shards, batch)?;
            log_info!("serve", "session closed after {handled} requests");
            Ok(())
        }
    }
}

/// `trout events --trace FILE [--out FILE] [--predict-every N]`
///
/// Flattens a trace into the time-ordered submit/start/end ndjson stream a
/// live client would have produced — directly pipeable into `trout serve`.
/// With `--predict-every N`, every Nth submit is followed by a predict for
/// that job at its submission instant; the script ends with `metrics` and
/// `shutdown` so a piped session exits cleanly.
pub fn events(opts: &Options) -> Result<()> {
    let trace = load_trace(opts)?;
    let predict_every: usize = opts.get_or("predict-every", 0)?;
    let out = replay_script(&trace, predict_every);
    match opts.get("out") {
        Some(path) => {
            fs::write(path, &out).map_err(|e| {
                TroutError::Io(std::io::Error::new(
                    e.kind(),
                    format!("writing {path}: {e}"),
                ))
            })?;
            log_info!("cli", "wrote {} event lines to {path}", out.lines().count());
        }
        None => print!("{out}"),
    }
    Ok(())
}

/// `trout metrics --connect HOST:PORT [--format json|prometheus]`
///
/// Queries a running `trout serve --listen` daemon for its metrics registry
/// and prints the dump: the JSON registry sections, or the raw Prometheus
/// text exposition (decoded from the response envelope) ready to paste into
/// a scrape file.
pub fn metrics(opts: &Options) -> Result<()> {
    let addr = opts.require("connect")?;
    let format = opts.get("format").unwrap_or("json");
    let request = match format {
        "json" => "{\"event\":\"metrics\"}\n",
        "prometheus" => "{\"event\":\"metrics\",\"format\":\"prometheus\"}\n",
        other => {
            return Err(TroutError::Config(format!(
                "unknown --format `{other}` (expected json or prometheus)"
            )))
        }
    };
    let mut conn = std::net::TcpStream::connect(addr)
        .map_err(|e| TroutError::Config(format!("cannot connect to {addr}: {e}")))?;
    conn.write_all(request.as_bytes())?;
    conn.flush()?;
    let mut line = String::new();
    BufReader::new(&conn).read_line(&mut line)?;
    let response = Json::parse(line.trim())
        .map_err(|e| TroutError::Protocol(format!("bad metrics response: {e}")))?;
    if response.get("ok") != Some(&Json::Bool(true)) {
        return Err(TroutError::Protocol(format!(
            "daemon rejected the metrics request: {}",
            line.trim()
        )));
    }
    match response.get("body") {
        // Prometheus: the exposition text rides in the body string.
        Some(Json::Str(body)) => print!("{body}"),
        _ => match response.get("metrics") {
            Some(m) => println!("{m}"),
            None => {
                return Err(TroutError::Protocol(
                    "metrics response has neither `metrics` nor `body`".into(),
                ))
            }
        },
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trout_slurmsim::SimulationBuilder;

    #[test]
    fn events_script_round_trips_through_the_protocol() {
        let trace = SimulationBuilder::anvil_like().jobs(40).seed(5).run();
        // Reuse the generator body via a temp file.
        let dir = std::env::temp_dir().join("trout_events_test");
        fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.csv");
        let out_path = dir.join("events.ndjson");
        fs::write(&trace_path, trace.to_csv()).unwrap();
        let opts = Options::parse(&[
            "--trace".into(),
            trace_path.display().to_string(),
            "--out".into(),
            out_path.display().to_string(),
            "--predict-every".into(),
            "4".into(),
        ])
        .unwrap();
        events(&opts).unwrap();

        let script = fs::read_to_string(&out_path).unwrap();
        // submit+start+end per record (no cancellations in the default
        // workload), one predict per 4 submits, plus metrics+shutdown.
        assert_eq!(script.lines().count(), 40 * 3 + 10 + 2);
        let mut predicts = 0usize;
        for line in script.lines() {
            let ev = trout_serve::parse_event(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            if matches!(ev, trout_serve::ClientEvent::Predict { .. }) {
                predicts += 1;
            }
        }
        assert_eq!(predicts, 10);
        assert!(script.trim_end().ends_with("{\"event\":\"shutdown\"}"));
    }
}
