//! The `trout serve` daemon and the `trout events` replay-script generator.

use std::fs;
use std::sync::{Arc, Mutex};

use trout_core::error::{Result, TroutError};
use trout_core::online::OnlineConfig;
use trout_core::TroutConfig;
use trout_features::incremental::{trace_events, ReplayEvent};
use trout_serve::protocol::job_to_json;
use trout_serve::{run_stdin, run_tcp, ServeConfig, ServeEngine};
use trout_std::json::Json;

use crate::args::Options;
use crate::commands::{load_model, load_trace};

/// `trout serve (--model MODEL.json --trace FILE | --bootstrap JOBS)
///              [--stdin | --listen ADDR] [--batch N] [--refit-every N]`
///
/// Builds the engine (either from a trained model plus its training trace,
/// or self-bootstrapped from a fresh simulation), then serves the ndjson
/// protocol over stdin/stdout (the default) or a TCP listener.
pub fn serve(opts: &Options) -> Result<()> {
    let batch: usize = opts.get_or("batch", 32)?;
    let cfg = ServeConfig {
        refit_every: opts.get_or("refit-every", 256)?,
        seed: opts.get_or("seed", 0)?,
        ..Default::default()
    };

    let engine = if opts.has("bootstrap") {
        let jobs: usize = opts.require_parsed("bootstrap")?;
        eprintln!(
            "serve: bootstrapping on a fresh {jobs}-job simulation (seed {})",
            cfg.seed
        );
        ServeEngine::bootstrap(jobs, &cfg)
    } else {
        let model = load_model(opts)?;
        let trace = load_trace(opts)?;
        eprintln!(
            "serve: loaded model, refitting scaler + runtime forest on {} trace records",
            trace.records.len()
        );
        ServeEngine::from_trace(
            &trace,
            Some(model),
            TroutConfig::default(),
            OnlineConfig::default(),
            &cfg,
        )
    };

    match opts.get("listen") {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| TroutError::Config(format!("cannot listen on {addr}: {e}")))?;
            eprintln!("serve: listening on {addr}");
            run_tcp(Arc::new(Mutex::new(engine)), listener, batch, None)
        }
        None => {
            eprintln!("serve: reading events from stdin (batch {batch})");
            let handled = run_stdin(engine, batch)?;
            eprintln!("serve: session closed after {handled} requests");
            Ok(())
        }
    }
}

/// `trout events --trace FILE [--out FILE] [--predict-every N]`
///
/// Flattens a trace into the time-ordered submit/start/end ndjson stream a
/// live client would have produced — directly pipeable into `trout serve`.
/// With `--predict-every N`, every Nth submit is followed by a predict for
/// that job at its submission instant; the script ends with `metrics` and
/// `shutdown` so a piped session exits cleanly.
pub fn events(opts: &Options) -> Result<()> {
    let trace = load_trace(opts)?;
    let predict_every: usize = opts.get_or("predict-every", 0)?;
    let mut out = String::new();
    let mut submits = 0usize;
    for (t, ev) in trace_events(&trace) {
        match ev {
            ReplayEvent::Submit(i) => {
                let r = &trace.records[i];
                let line = Json::Obj(vec![
                    ("event".into(), Json::Str("submit".into())),
                    ("job".into(), job_to_json(r)),
                ]);
                out.push_str(&line.to_string());
                out.push('\n');
                submits += 1;
                if predict_every > 0 && submits % predict_every == 0 {
                    out.push_str(&format!(
                        "{{\"event\":\"predict\",\"id\":{},\"time\":{}}}\n",
                        r.id, r.submit_time
                    ));
                }
            }
            ReplayEvent::Start(i) => out.push_str(&format!(
                "{{\"event\":\"start\",\"id\":{},\"time\":{t}}}\n",
                trace.records[i].id
            )),
            ReplayEvent::End(i) => out.push_str(&format!(
                "{{\"event\":\"end\",\"id\":{},\"time\":{t}}}\n",
                trace.records[i].id
            )),
        }
    }
    out.push_str("{\"event\":\"metrics\"}\n{\"event\":\"shutdown\"}\n");
    match opts.get("out") {
        Some(path) => {
            fs::write(path, &out).map_err(|e| {
                TroutError::Io(std::io::Error::new(
                    e.kind(),
                    format!("writing {path}: {e}"),
                ))
            })?;
            eprintln!("wrote {} event lines to {path}", out.lines().count());
        }
        None => print!("{out}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trout_slurmsim::SimulationBuilder;

    #[test]
    fn events_script_round_trips_through_the_protocol() {
        let trace = SimulationBuilder::anvil_like().jobs(40).seed(5).run();
        // Reuse the generator body via a temp file.
        let dir = std::env::temp_dir().join("trout_events_test");
        fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.csv");
        let out_path = dir.join("events.ndjson");
        fs::write(&trace_path, trace.to_csv()).unwrap();
        let opts = Options::parse(&[
            "--trace".into(),
            trace_path.display().to_string(),
            "--out".into(),
            out_path.display().to_string(),
            "--predict-every".into(),
            "4".into(),
        ])
        .unwrap();
        events(&opts).unwrap();

        let script = fs::read_to_string(&out_path).unwrap();
        // submit+start+end per record (no cancellations in the default
        // workload), one predict per 4 submits, plus metrics+shutdown.
        assert_eq!(script.lines().count(), 40 * 3 + 10 + 2);
        let mut predicts = 0usize;
        for line in script.lines() {
            let ev = trout_serve::parse_event(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            if matches!(ev, trout_serve::ClientEvent::Predict { .. }) {
                predicts += 1;
            }
        }
        assert_eq!(predicts, 10);
        assert!(script.trim_end().ends_with("{\"event\":\"shutdown\"}"));
    }
}
