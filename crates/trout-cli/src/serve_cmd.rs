//! The `trout serve` daemon, the `trout events` replay-script generator,
//! and the `trout metrics` client for a running daemon.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;

use trout_core::error::{Result, TroutError};
use trout_core::online::OnlineConfig;
use trout_core::TroutConfig;
use trout_obs::log_info;
use trout_serve::{
    replay_script, run_follower, run_reactor, run_stdin, run_tcp, spawn_replication_listener,
    ReactorConfig, ServeConfig, ShardSet,
};
use trout_std::json::Json;

use crate::args::Options;
use crate::commands::{load_model, load_trace};

/// `trout serve (--model MODEL.json --trace FILE | --bootstrap JOBS)
///              [--stdin | --listen ADDR [--reactor [--reactor-threads N]]]
///              [--shards N] [--batch N] [--refit-every N] [--infer-f32]
///              [--deadline-ms N] [--urgent-deadline-ms N]
///              [--batch-deadline-ms N] [--est-predict-us N]
///              [--state-dir DIR [--recover] [--snapshot-every N]
///               [--fsync-every N] [--compact]]
///              [--replicate-listen ADDR | --follow ADDR]`
///
/// Builds the shard set (either from a trained model plus its training
/// trace, or self-bootstrapped from a fresh simulation), then serves the
/// ndjson protocol over stdin/stdout (the default) or a TCP listener.
///
/// `--shards N` runs N independent engines: lifecycle events broadcast to
/// every shard, predicts route by `hash(job_id) % N`, and the wire protocol
/// is unchanged. `--reactor` swaps the listener's thread-per-connection
/// transport for the `poll(2)` event loop (`--reactor-threads`, default
/// auto), multiplexing many connections per thread.
///
/// The scheduler flags tune the v2 predict SLO layer (DESIGN §12):
/// `--deadline-ms` / `--urgent-deadline-ms` / `--batch-deadline-ms` set the
/// default latency budget of the normal / urgent / batch lane (defaults
/// 500 / 50 / 5000) for predicts that name no explicit `deadline_ms`, and
/// `--est-predict-us` (default 150) is the per-prediction cost estimate
/// behind both the deadline-hold window and the admission-control shed
/// threshold.
///
/// `--infer-f32` serves predictions through the packed f32 fast path:
/// weights are transposed and batch norm folded once per model publish, and
/// the forward pass runs on the runtime-dispatched SIMD kernels
/// (overridable via `TROUT_SIMD=scalar|sse2|avx2`). Opt-in because packed
/// outputs are near- but not bit-identical to the exact path; journals,
/// snapshots and refits always use the exact model, so recovery only needs
/// the flag repeated to reproduce served answers.
///
/// With `--state-dir`, every accepted event is appended to a write-ahead
/// journal (fsynced per `--fsync-every`, default 1 = durable before each
/// acknowledgment) and a snapshot is written every `--snapshot-every`
/// events (default 1024; 0 = journal only). Each shard journals into its
/// own `shard-NNN/` subdirectory. After a crash, restarting with the
/// **same engine arguments** (including `--shards`) plus `--recover`
/// restores the exact state the crashed daemon had acknowledged.
/// `--compact` truncates each journal after the snapshot that covers it,
/// bounding the state dir to one snapshot plus one snapshot interval of
/// tail (recovery and replication positions stay absolute).
///
/// Replication (DESIGN §15): `--replicate-listen ADDR` makes this daemon a
/// leader that streams every acknowledged journal entry to connected
/// followers; `--follow ADDR` makes it a hot standby that replays the
/// leader's stream into a warm engine, journals it locally, serves
/// read-only predicts (lifecycle events get a typed `read_only` error),
/// and becomes the leader when sent `{"event":"promote"}`. Both require
/// `--state-dir`; a follower also requires `--listen` (the promote line
/// arrives on the client port), and bootstrap arguments must match the
/// leader's.
pub fn serve(opts: &Options) -> Result<()> {
    let batch: usize = opts.get_or("batch", 32)?;
    let n_shards: usize = opts.get_or("shards", 1)?;
    if n_shards == 0 {
        return Err(TroutError::Config("--shards must be at least 1".into()));
    }
    let cfg = ServeConfig {
        refit_every: opts.get_or("refit-every", 256)?,
        seed: opts.get_or("seed", 0)?,
        infer_f32: opts.has("infer-f32"),
        ..Default::default()
    };
    // One startup line pins down which kernel tier this process dispatched
    // to (and therefore what TROUT_SIMD resolved to), for every mode.
    log_info!(
        "serve",
        "simd kernel tier: {} (best supported {}; override with TROUT_SIMD), inference {}",
        trout_linalg::SimdTier::active().name(),
        trout_linalg::SimdTier::best_supported().name(),
        if cfg.infer_f32 { "packed-f32" } else { "exact" }
    );

    let shards = if opts.has("bootstrap") {
        let jobs: usize = opts.require_parsed("bootstrap")?;
        log_info!(
            "serve",
            "bootstrapping {n_shards} shard(s) on a fresh {jobs}-job simulation (seed {})",
            cfg.seed
        );
        ShardSet::bootstrap(n_shards, jobs, &cfg)
    } else {
        let model = load_model(opts)?;
        let trace = load_trace(opts)?;
        log_info!(
            "serve",
            "loaded model, refitting scaler + runtime forest on {} trace records \
             ({n_shards} shard(s))",
            trace.records.len()
        );
        ShardSet::from_trace(
            n_shards,
            &trace,
            Some(model),
            TroutConfig::default(),
            OnlineConfig::default(),
            &cfg,
        )
    };

    let mut sched = trout_serve::SchedulerConfig::default();
    sched.default_deadline_ms = [
        opts.get_or("urgent-deadline-ms", sched.default_deadline_ms[0])?,
        opts.get_or("deadline-ms", sched.default_deadline_ms[1])?,
        opts.get_or("batch-deadline-ms", sched.default_deadline_ms[2])?,
    ];
    sched.est_predict_us = opts.get_or("est-predict-us", sched.est_predict_us)?;
    if sched.est_predict_us == 0 {
        return Err(TroutError::Config(
            "--est-predict-us must be at least 1".into(),
        ));
    }
    if sched.default_deadline_ms.contains(&0) {
        return Err(TroutError::Config(
            "lane deadlines must be at least 1 ms".into(),
        ));
    }
    let shards = shards.with_scheduler(sched);

    let fsync_every: u64 = opts.get_or("fsync-every", 1)?;
    for i in 0..shards.len() {
        shards.lock(i).online_config_mut().journal_fsync_every = fsync_every;
    }
    if opts.has("compact") {
        shards.set_compaction(true);
    }

    let replicate_listen = opts.get("replicate-listen").map(str::to_string);
    let follow = opts.get("follow").map(str::to_string);
    if replicate_listen.is_some() && follow.is_some() {
        return Err(TroutError::Config(
            "--replicate-listen (leader) and --follow (follower) are mutually exclusive".into(),
        ));
    }
    let repl_state_dir = if replicate_listen.is_some() || follow.is_some() {
        match opts.get("state-dir") {
            Some(dir) => Some(std::path::PathBuf::from(dir)),
            None => {
                return Err(TroutError::Config(
                    "replication needs --state-dir DIR: the journal is the stream".into(),
                ))
            }
        }
    } else {
        None
    };

    let recover = opts.has("recover");
    match opts.get("state-dir") {
        Some(dir) => {
            let snapshot_every: u64 = opts.get_or("snapshot-every", 1024)?;
            let reports = shards
                .open_state_dir(std::path::Path::new(dir), snapshot_every, recover)
                .map_err(|e| TroutError::Config(format!("state dir {dir}: {e}")))?;
            if recover {
                for (i, report) in reports.iter().enumerate() {
                    log_info!(
                        "serve",
                        "shard {i} recovered from {dir}: snapshot {}, {} of {} journal \
                         events replayed",
                        if report.snapshot_loaded {
                            "loaded"
                        } else {
                            "absent"
                        },
                        report.replayed,
                        report.journal_lines
                    );
                }
            } else {
                log_info!(
                    "serve",
                    "journaling {n_shards} shard(s) to {dir} (snapshot every {snapshot_every})"
                );
            }
        }
        None if recover => {
            return Err(TroutError::Config(
                "--recover requires --state-dir DIR".into(),
            ))
        }
        None => {}
    }

    match opts.get("listen") {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| TroutError::Config(format!("cannot listen on {addr}: {e}")))?;
            let shards = Arc::new(shards);
            let _leader_hub = match &replicate_listen {
                Some(raddr) => {
                    let rlistener = std::net::TcpListener::bind(raddr).map_err(|e| {
                        TroutError::Config(format!("cannot listen for followers on {raddr}: {e}"))
                    })?;
                    let dir = repl_state_dir.clone().expect("checked above");
                    let hub = spawn_replication_listener(Arc::clone(&shards), dir, rlistener)?;
                    log_info!(
                        "serve",
                        "replication leader streaming journals on {}",
                        hub.addr()
                    );
                    Some(hub)
                }
                None => None,
            };
            let _follower = follow.as_ref().map(|faddr| {
                let s = Arc::clone(&shards);
                let dir = repl_state_dir.clone().expect("checked above");
                let faddr = faddr.clone();
                log_info!(
                    "serve",
                    "hot standby following {faddr}: lifecycle events are refused \
                     (read_only) until {{\"event\":\"promote\"}}"
                );
                std::thread::spawn(move || run_follower(&s, &dir, &faddr))
            });
            if opts.has("reactor") {
                let threads: usize = opts.get_or("reactor-threads", 0)?;
                log_info!(
                    "serve",
                    "listening on {addr} (reactor transport, {} thread(s))",
                    if threads == 0 {
                        "auto".to_string()
                    } else {
                        threads.to_string()
                    }
                );
                run_reactor(
                    shards,
                    listener,
                    ReactorConfig {
                        threads,
                        batch_max: batch,
                        max_conns: None,
                    },
                )
            } else {
                log_info!("serve", "listening on {addr}");
                run_tcp(shards, listener, batch, None)
            }
        }
        None if replicate_listen.is_some() || follow.is_some() => Err(TroutError::Config(
            "replication needs --listen ADDR: followers ack over TCP and \
             {\"event\":\"promote\"} arrives on the client port"
                .into(),
        )),
        None => {
            log_info!("serve", "reading events from stdin (batch {batch})");
            let handled = run_stdin(shards, batch)?;
            log_info!("serve", "session closed after {handled} requests");
            Ok(())
        }
    }
}

/// `trout events --trace FILE [--out FILE] [--predict-every N]`
///
/// Flattens a trace into the time-ordered submit/start/end ndjson stream a
/// live client would have produced — directly pipeable into `trout serve`.
/// With `--predict-every N`, every Nth submit is followed by a predict for
/// that job at its submission instant; the script ends with `metrics` and
/// `shutdown` so a piped session exits cleanly.
pub fn events(opts: &Options) -> Result<()> {
    let trace = load_trace(opts)?;
    let predict_every: usize = opts.get_or("predict-every", 0)?;
    let out = replay_script(&trace, predict_every);
    match opts.get("out") {
        Some(path) => {
            fs::write(path, &out).map_err(|e| {
                TroutError::Io(std::io::Error::new(
                    e.kind(),
                    format!("writing {path}: {e}"),
                ))
            })?;
            log_info!("cli", "wrote {} event lines to {path}", out.lines().count());
        }
        None => print!("{out}"),
    }
    Ok(())
}

/// `trout metrics --connect HOST:PORT [--format json|prometheus]`
///
/// Queries a running `trout serve --listen` daemon for its metrics registry
/// and prints the dump: the JSON registry sections, or the raw Prometheus
/// text exposition (decoded from the response envelope) ready to paste into
/// a scrape file.
pub fn metrics(opts: &Options) -> Result<()> {
    let addr = opts.require("connect")?;
    if opts.has("watch") {
        return watch_metrics(opts, addr);
    }
    let format = opts.get("format").unwrap_or("json");
    let request = match format {
        "json" => "{\"event\":\"metrics\"}\n",
        "prometheus" => "{\"event\":\"metrics\",\"format\":\"prometheus\"}\n",
        other => {
            return Err(TroutError::Config(format!(
                "unknown --format `{other}` (expected json or prometheus)"
            )))
        }
    };
    let response = request_one(addr, request)?;
    match response.get("body") {
        // Prometheus: the exposition text rides in the body string.
        Some(Json::Str(body)) => print!("{body}"),
        _ => match response.get("metrics") {
            Some(m) => println!("{m}"),
            None => {
                return Err(TroutError::Protocol(
                    "metrics response has neither `metrics` nor `body`".into(),
                ))
            }
        },
    }
    Ok(())
}

/// `trout replicate --connect HOST:PORT [--json]`
///
/// Queries a running daemon for its replication status: role (leader or
/// follower) plus, per shard, the absolute journal watermark, compaction
/// base, connected follower count, and replication lag in events. `--json`
/// prints the raw response line.
pub fn replicate(opts: &Options) -> Result<()> {
    let addr = opts.require("connect")?;
    let response = request_one(addr, "{\"event\":\"replication\"}\n")?;
    if opts.has("json") {
        println!("{response}");
        return Ok(());
    }
    let role = match response.get("role") {
        Some(Json::Str(s)) => s.clone(),
        _ => "?".into(),
    };
    let int_of = |j: Option<&Json>| match j {
        Some(Json::Int(v)) => *v,
        _ => 0,
    };
    println!("role: {role}");
    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>8}",
        "shard", "watermark", "base", "followers", "lag"
    );
    if let Some(Json::Arr(shards)) = response.get("shards") {
        for (i, s) in shards.iter().enumerate() {
            println!(
                "{:<6} {:>12} {:>12} {:>10} {:>8}",
                i,
                int_of(s.get("watermark")),
                int_of(s.get("base")),
                int_of(s.get("followers")),
                int_of(s.get("lag")),
            );
        }
    }
    Ok(())
}

/// Sends one request line to a daemon at `addr` over a fresh connection and
/// returns the parsed (and `ok`-checked) one-line response.
fn request_one(addr: &str, request: &str) -> Result<Json> {
    let mut conn = std::net::TcpStream::connect(addr)
        .map_err(|e| TroutError::Config(format!("cannot connect to {addr}: {e}")))?;
    conn.write_all(request.as_bytes())?;
    conn.flush()?;
    let mut line = String::new();
    BufReader::new(&conn).read_line(&mut line)?;
    let response =
        Json::parse(line.trim()).map_err(|e| TroutError::Protocol(format!("bad response: {e}")))?;
    if response.get("ok") != Some(&Json::Bool(true)) {
        return Err(TroutError::Protocol(format!(
            "daemon rejected the request: {}",
            line.trim()
        )));
    }
    Ok(response)
}

/// One poll's worth of per-lane scheduler counters, pulled out of the
/// metrics JSON (`admission` + `burn` sections).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LanePoll {
    pub predicts: [u64; 3],
    pub shed: [u64; 3],
    pub violations: [u64; 3],
    pub burn_fast: [f64; 3],
}

const LANE_NAMES: [&str; 3] = ["urgent", "normal", "batch"];

/// Extracts the per-lane counters one watch poll displays.
fn lane_poll(m: &Json) -> LanePoll {
    let int_of = |j: Option<&Json>| match j {
        Some(Json::Int(v)) => *v as u64,
        _ => 0,
    };
    let num_of = |j: Option<&Json>| match j {
        Some(Json::Num(v)) => *v,
        Some(Json::Int(v)) => *v as f64,
        _ => 0.0,
    };
    let mut p = LanePoll::default();
    let adm = m.get("admission");
    let burn = m.get("burn");
    for (i, lane) in LANE_NAMES.iter().enumerate() {
        let section = |name: &str| adm.and_then(|a| a.get(name)).and_then(|s| s.get(lane));
        p.predicts[i] = int_of(section("lane_predicts"));
        p.shed[i] = int_of(section("shed"));
        p.violations[i] = int_of(section("slo_violations"));
        p.burn_fast[i] = num_of(
            burn.and_then(|b| b.get("fast"))
                .and_then(|f| f.get(lane))
                .and_then(|l| l.get("burn_rate")),
        );
    }
    p
}

/// Renders one watch frame: a per-lane table of cumulative counts plus the
/// deltas since the previous poll (`-` on the first frame).
fn render_watch(cur: &LanePoll, prev: Option<&LanePoll>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>10} {:>8} {:>10} {:>8} {:>11} {:>9} {:>10}\n",
        "lane", "predicts", "Δpred", "shed", "Δshed", "violations", "Δviol", "burn(1m)"
    ));
    let delta = |cur: u64, prev: Option<u64>| match prev {
        Some(p) => format!("{:+}", cur as i128 - p as i128),
        None => "-".to_string(),
    };
    for (i, lane) in LANE_NAMES.iter().enumerate() {
        out.push_str(&format!(
            "{:<8} {:>10} {:>8} {:>10} {:>8} {:>11} {:>9} {:>10.2}\n",
            lane,
            cur.predicts[i],
            delta(cur.predicts[i], prev.map(|p| p.predicts[i])),
            cur.shed[i],
            delta(cur.shed[i], prev.map(|p| p.shed[i])),
            cur.violations[i],
            delta(cur.violations[i], prev.map(|p| p.violations[i])),
            cur.burn_fast[i],
        ));
    }
    out
}

/// `trout metrics --connect HOST:PORT --watch SECS [--polls N]`
///
/// Re-polls the daemon every `SECS` seconds, clearing the screen and
/// printing a per-lane table of predicts / sheds / SLO violations with the
/// deltas between polls plus the fast-window burn rate. `--polls N` stops
/// after N frames (0 = until interrupted).
fn watch_metrics(opts: &Options, addr: &str) -> Result<()> {
    let secs: u64 = opts.get_or("watch", 2)?;
    let polls: u64 = opts.get_or("polls", 0)?;
    let mut prev: Option<LanePoll> = None;
    let mut n = 0u64;
    loop {
        let response = request_one(addr, "{\"event\":\"metrics\"}\n")?;
        let m = response.get("metrics").ok_or_else(|| {
            TroutError::Protocol("metrics response is missing the `metrics` body".into())
        })?;
        let cur = lane_poll(m);
        // ANSI clear-screen + home, then the frame.
        print!("\x1b[2J\x1b[H");
        print!(
            "trout metrics --watch {secs}s @ {addr} (poll {})\n\n{}",
            n + 1,
            render_watch(&cur, prev.as_ref())
        );
        std::io::stdout().flush()?;
        prev = Some(cur);
        n += 1;
        if polls != 0 && n >= polls {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(secs.max(1)));
    }
}

/// `trout trace --connect HOST:PORT [--last N] [--json]`
///
/// Pulls the daemon's flight recorder: the last N completed traced requests
/// (newest first, merged across shards) with their per-stage latency
/// breakdown. `--json` prints the raw response line instead of the table.
pub fn trace(opts: &Options) -> Result<()> {
    let addr = opts.require("connect")?;
    let last: u64 = opts.get_or("last", 16)?;
    let request = format!("{{\"event\":\"trace\",\"last\":{last}}}\n");
    let response = request_one(addr, &request)?;
    if opts.has("json") {
        println!("{}", response.to_string());
        return Ok(());
    }
    print!("{}", render_traces(&response));
    Ok(())
}

/// Renders a `trace` response as a table: one row per trace, newest first,
/// with the total and every pipeline stage in microseconds.
fn render_traces(response: &Json) -> String {
    let empty = Vec::new();
    let traces = match response.get("traces") {
        Some(Json::Arr(v)) => v,
        _ => &empty,
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:<8} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8} {:>9}\n",
        "trace_id",
        "lane",
        "total_us",
        "parse",
        "hold",
        "admission",
        "featurize",
        "inference",
        "backlog",
        "serialize"
    ));
    let int_of = |j: Option<&Json>| match j {
        Some(Json::Int(v)) => *v,
        _ => 0,
    };
    for t in traces {
        let stage = |name: &str| int_of(t.get("stages").and_then(|s| s.get(name)));
        let lane = match t.get("lane") {
            Some(Json::Str(s)) => s.clone(),
            _ => "?".into(),
        };
        let id = match t.get("trace_id") {
            Some(Json::Str(s)) => s.clone(),
            _ => "?".into(),
        };
        out.push_str(&format!(
            "{:<18} {:<8} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8} {:>9}\n",
            id,
            lane,
            int_of(t.get("total_us")),
            stage("parse_us"),
            stage("hold_us"),
            stage("admission_us"),
            stage("featurize_us"),
            stage("inference_us"),
            stage("backlog_us"),
            stage("serialize_us"),
        ));
    }
    if traces.is_empty() {
        out.push_str("(no completed traced requests yet — send predicts with \"trace\":true)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trout_slurmsim::SimulationBuilder;

    #[test]
    fn watch_frame_shows_deltas_between_polls() {
        let prev = LanePoll {
            predicts: [10, 100, 5],
            shed: [0, 2, 1],
            violations: [0, 1, 0],
            burn_fast: [0.0, 0.5, 0.0],
        };
        let cur = LanePoll {
            predicts: [15, 130, 5],
            shed: [0, 6, 1],
            violations: [0, 3, 0],
            burn_fast: [0.0, 1.25, 0.0],
        };
        let first = render_watch(&cur, None);
        assert!(first.contains("urgent"), "{first}");
        assert!(
            first.lines().nth(1).unwrap().contains(" - "),
            "first frame has no deltas:\n{first}"
        );
        let frame = render_watch(&cur, Some(&prev));
        let normal = frame.lines().nth(2).unwrap();
        assert!(normal.contains("+30"), "predict delta:\n{frame}");
        assert!(normal.contains("+4"), "shed delta:\n{frame}");
        assert!(normal.contains("+2"), "violation delta:\n{frame}");
        assert!(normal.contains("1.25"), "burn rate:\n{frame}");
    }

    #[test]
    fn lane_poll_reads_admission_and_burn_sections() {
        let m = Json::parse(
            r#"{"admission":{"lane_predicts":{"urgent":3,"normal":7,"batch":0},
                "shed":{"urgent":0,"normal":1,"batch":2},
                "slo_violations":{"urgent":0,"normal":0,"batch":1}},
                "burn":{"fast":{"urgent":{"good":3,"violating":0,"burn_rate":0.0},
                "normal":{"good":6,"violating":1,"burn_rate":14.3},
                "batch":{"good":0,"violating":0,"burn_rate":0}}}}"#,
        )
        .unwrap();
        let p = lane_poll(&m);
        assert_eq!(p.predicts, [3, 7, 0]);
        assert_eq!(p.shed, [0, 1, 2]);
        assert_eq!(p.violations, [0, 0, 1]);
        assert!((p.burn_fast[1] - 14.3).abs() < 1e-9);
    }

    #[test]
    fn trace_table_renders_stage_columns() {
        let resp = Json::parse(
            r#"{"ok":true,"event":"trace","count":1,"traces":[
                {"trace_id":"00000000000000ff","lane":"urgent","end_us":900,
                 "total_us":450,"stages":{"parse_us":10,"hold_us":100,
                 "admission_us":20,"featurize_us":200,"inference_us":90,
                 "backlog_us":5,"serialize_us":25}}]}"#,
        )
        .unwrap();
        let table = render_traces(&resp);
        assert!(table.contains("trace_id"), "{table}");
        assert!(table.contains("00000000000000ff"), "{table}");
        assert!(table.contains("urgent"), "{table}");
        assert!(table.contains("450"), "{table}");
        assert!(table.contains("200"), "{table}");
        let empty = render_traces(&Json::parse(r#"{"ok":true,"traces":[]}"#).unwrap());
        assert!(empty.contains("no completed traced requests"), "{empty}");
    }

    #[test]
    fn events_script_round_trips_through_the_protocol() {
        let trace = SimulationBuilder::anvil_like().jobs(40).seed(5).run();
        // Reuse the generator body via a temp file.
        let dir = std::env::temp_dir().join("trout_events_test");
        fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.csv");
        let out_path = dir.join("events.ndjson");
        fs::write(&trace_path, trace.to_csv()).unwrap();
        let opts = Options::parse(&[
            "--trace".into(),
            trace_path.display().to_string(),
            "--out".into(),
            out_path.display().to_string(),
            "--predict-every".into(),
            "4".into(),
        ])
        .unwrap();
        events(&opts).unwrap();

        let script = fs::read_to_string(&out_path).unwrap();
        // submit+start+end per record (no cancellations in the default
        // workload), one predict per 4 submits, plus metrics+shutdown.
        assert_eq!(script.lines().count(), 40 * 3 + 10 + 2);
        let mut predicts = 0usize;
        for line in script.lines() {
            let ev = trout_serve::parse_event(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            if matches!(ev, trout_serve::ClientEvent::Predict { .. }) {
                predicts += 1;
            }
        }
        assert_eq!(predicts, 10);
        assert!(script.trim_end().ends_with("{\"event\":\"shutdown\"}"));
    }
}
