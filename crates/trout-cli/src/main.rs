//! `trout` — the command-line queue-time prediction tool (§V).
//!
//! The paper integrates the hierarchical model into a CLI that takes a job in
//! the queue and prints a prediction; this binary reproduces it against the
//! simulated cluster, plus the "hypothetical job queueing" extension sketched
//! in the paper's future work.
//!
//! ```text
//! trout simulate  --jobs 20000 --seed 42 --out trace.csv
//! trout stats     --trace trace.csv
//! trout train     --trace trace.csv --out model.json
//! trout predict   --model model.json --trace trace.csv --job-id 19999
//! trout whatif    --model model.json --trace trace.csv --partition shared \
//!                 --cpus 16 --mem 32 --nodes 1 --timelimit 240
//! trout importance --model model.json --trace trace.csv
//! ```

use std::process::ExitCode;

use trout_core::TroutError;

mod args;
mod commands;
mod serve_cmd;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), TroutError> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Err(TroutError::Config("missing subcommand".into()));
    };
    let opts = args::Options::parse(&argv[1..])?;
    match cmd.as_str() {
        "simulate" => commands::simulate(&opts),
        "stats" => commands::stats(&opts),
        "train" => commands::train(&opts),
        "predict" => commands::predict(&opts),
        "whatif" => commands::whatif(&opts),
        "importance" => commands::importance(&opts),
        "eval" => commands::eval(&opts),
        "tune" => commands::tune(&opts),
        "serve" => serve_cmd::serve(&opts),
        "events" => serve_cmd::events(&opts),
        "metrics" => serve_cmd::metrics(&opts),
        "trace" => serve_cmd::trace(&opts),
        "replicate" => serve_cmd::replicate(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(TroutError::Config(format!(
            "unknown subcommand `{other}` (try `trout help`)"
        ))),
    }
}

fn print_usage() {
    println!(
        "trout — hierarchical queue-time prediction for SLURM-like clusters

USAGE: trout <subcommand> [--flag value ...]

SUBCOMMANDS:
  simulate    generate a synthetic Anvil-like accounting trace (CSV)
              --jobs N --seed S --out FILE
  stats       print Table-I style statistics for a trace
              --trace FILE
  train       featurize a trace and train the hierarchical model
              --trace FILE --out MODEL.json [--cutoff MIN] [--epochs N]
  predict     Algorithm 1 for one job in the trace
              --model MODEL.json --trace FILE --job-id ID
  whatif      hypothetical job queueing (paper \u{a7}V future work)
              --model MODEL.json --trace FILE --partition NAME
              --cpus N --mem GB --nodes N --timelimit MIN [--gpus N]
  importance  permutation feature importance of the trained regressor
              --model MODEL.json --trace FILE [--top N]
  eval        run the paper's 5-fold time-series evaluation on a trace
              --trace FILE [--folds N]
  tune        Optuna-substitute hyper-parameter search for the regressor
              --trace FILE [--trials N]
  serve       online prediction daemon (ndjson over stdin/stdout or TCP)
              (--model MODEL.json --trace FILE | --bootstrap JOBS)
              [--stdin | --listen ADDR [--reactor [--reactor-threads N]]]
              [--shards N] [--batch N] [--refit-every N]
              [--state-dir DIR [--recover] [--snapshot-every N]
               [--fsync-every N] [--compact]]   crash-safe journaling +
              recovery; --compact truncates the journal behind each snapshot
              [--replicate-listen ADDR]   leader: stream journals to followers
              [--follow ADDR]   hot standby: replay the leader's stream,
              serve read-only, promote via {{\"event\":\"promote\"}}
              --shards N routes predicts across N engines; --reactor swaps
              thread-per-connection for a poll(2) event loop
  events      flatten a trace into a submit/start/end ndjson replay script
              --trace FILE [--out FILE] [--predict-every N]
  metrics     dump a running daemon's metrics registry
              --connect HOST:PORT [--format json|prometheus]
              [--watch SECS [--polls N]]   live per-lane delta table
  trace       pull a running daemon's flight recorder (traced requests
              with per-stage latency breakdown)
              --connect HOST:PORT [--last N] [--json]
  replicate   query a daemon's replication status (role, per-shard
              watermark / compaction base / followers / lag)
              --connect HOST:PORT [--json]

Set TROUT_LOG=debug|info|warn|error|off to filter the structured JSONL
event log on stderr (default info)."
    );
}
