//! CLI subcommand implementations.

use std::fs;

use trout_core::error::{Result, TroutError};
use trout_core::eval as core_eval;
use trout_core::tuner::{tune_regressor, TunerConfig};
use trout_core::{
    featurize, BatchPredictionRequest, HierarchicalModel, PredictionRequest, Predictor,
    TroutConfig, TroutTrainer,
};
use trout_features::names;
use trout_ml::importance::permutation_importance;
use trout_ml::metrics;
use trout_slurmsim::{JobRecord, JobState, SimulationBuilder, Trace};
use trout_workload::stats::TraceStats;
use trout_workload::ClusterSpec;

use crate::args::Options;

/// `trout simulate --jobs N --seed S --out FILE`
pub fn simulate(opts: &Options) -> Result<()> {
    let jobs: usize = opts.get_or("jobs", 20_000)?;
    let seed: u64 = opts.get_or("seed", 42)?;
    let out = opts.require("out")?;
    let trace = SimulationBuilder::anvil_like().jobs(jobs).seed(seed).run();
    fs::write(out, trace.to_csv()).map_err(|e| io_at("writing", out, e))?;
    println!(
        "wrote {} records to {out} ({:.1}% under 10 min)",
        trace.records.len(),
        100.0 * trace.quick_start_fraction(10.0)
    );
    Ok(())
}

/// Wraps an io error with the operation and path it came from.
fn io_at(what: &str, path: &str, e: std::io::Error) -> TroutError {
    TroutError::Io(std::io::Error::new(e.kind(), format!("{what} {path}: {e}")))
}

pub(crate) fn load_trace(opts: &Options) -> Result<Trace> {
    let path = opts.require("trace")?;
    let text = fs::read_to_string(path).map_err(|e| io_at("reading", path, e))?;
    // SWF logs (Parallel Workloads Archive) start with `;` header comments
    // or use the .swf extension; everything else is the native CSV format.
    if path.ends_with(".swf") || text.starts_with(';') {
        let (trace, stats) =
            trout_slurmsim::swf::parse_swf(&text).map_err(|e| TroutError::Parse(e.to_string()))?;
        trout_obs::log_info!(
            "cli",
            "imported SWF: {} jobs ({} skipped as never-started)",
            stats.imported,
            stats.skipped_not_started
        );
        return Ok(trace);
    }
    Trace::from_csv(ClusterSpec::anvil_like(), &text)
        .ok_or_else(|| TroutError::Parse(format!("{path} is not a trout trace CSV or SWF log")))
}

/// `trout stats --trace FILE`
pub fn stats(opts: &Options) -> Result<()> {
    let trace = load_trace(opts)?;
    let stats = TraceStats::of(&to_requests(&trace));
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "Variable", "Max", "Mean", "Median", "Std Dev", "Count"
    );
    for (name, s) in [
        ("Requested Time (hr)", &stats.requested_time_hr),
        ("Runtime (hr)", &stats.runtime_hr),
        ("Wasted Time (hr)", &stats.wasted_time_hr),
        ("Jobs Submitted By User", &stats.jobs_per_user),
    ] {
        println!(
            "{:<24} {:>10.1} {:>10.2} {:>10.2} {:>10.1} {:>10}",
            name, s.max, s.mean, s.median, s.std_dev, s.count
        );
    }
    println!(
        "\nqueue time: {:.1}% of jobs under 10 minutes",
        100.0 * trace.quick_start_fraction(10.0)
    );
    Ok(())
}

/// Rebuilds request-like rows from records (for the stats table; runtime is
/// known because these jobs already ran).
fn to_requests(trace: &Trace) -> Vec<trout_workload::JobRequest> {
    trace
        .records
        .iter()
        .map(|r| trout_workload::JobRequest {
            id: r.id,
            user: r.user,
            partition: r.partition,
            submit_time: r.submit_time,
            eligible_time: r.eligible_time,
            req_cpus: r.req_cpus,
            req_mem_gb: r.req_mem_gb,
            req_nodes: r.req_nodes,
            req_gpus: r.req_gpus,
            timelimit_min: r.timelimit_min,
            true_runtime_min: r.runtime_min().round() as u32,
            hidden_delay_min: 0,
            cancel_after_min: 0,
            qos: r.qos,
            campaign: r.campaign,
        })
        .collect()
}

/// `trout train --trace FILE --out MODEL.json [--cutoff MIN] [--epochs N]`
pub fn train(opts: &Options) -> Result<()> {
    let trace = load_trace(opts)?;
    let out = opts.require("out")?;
    let mut cfg = TroutConfig::default();
    cfg.cutoff_min = opts.get_or("cutoff", 10.0f32)?;
    cfg.regressor_epochs = opts.get_or("epochs", cfg.regressor_epochs)?;
    cfg.seed = opts.get_or("seed", 0)?;
    let (ds, _) = featurize(&trace, 0.6, cfg.seed);
    let model = TroutTrainer::new(cfg.clone()).fit(&ds);
    fs::write(out, model.to_json()).map_err(|e| io_at("writing", out, e))?;

    // Quick self-report on the most recent 20 %.
    let split = ds.len() * 4 / 5;
    let test: Vec<usize> = (split..ds.len()).collect();
    let (tx, ty) = ds.select(&test);
    let probs: Vec<f32> = model
        .predict_batch(BatchPredictionRequest::new(&tx))
        .into_iter()
        .map(|p| p.quick_proba)
        .collect();
    let labels: Vec<f32> = ty
        .iter()
        .map(|&q| if q < cfg.cutoff_min { 1.0 } else { 0.0 })
        .collect();
    println!(
        "trained on {} jobs; holdout classifier accuracy {:.2}% ({} test jobs); saved to {out}",
        split,
        100.0 * metrics::binary_accuracy(&probs, &labels),
        test.len()
    );
    Ok(())
}

pub(crate) fn load_model(opts: &Options) -> Result<HierarchicalModel> {
    let path = opts.require("model")?;
    let json = fs::read_to_string(path).map_err(|e| io_at("reading", path, e))?;
    HierarchicalModel::from_json(&json).map_err(|e| TroutError::Model(format!("{path}: {e}")))
}

/// `trout predict --model MODEL.json --trace FILE --job-id ID`
pub fn predict(opts: &Options) -> Result<()> {
    let trace = load_trace(opts)?;
    let model = load_model(opts)?;
    let job_id: u64 = opts.require_parsed("job-id")?;
    let row = trace
        .records
        .iter()
        .position(|r| r.id == job_id)
        .ok_or_else(|| TroutError::Config(format!("job {job_id} not found in trace")))?;
    let (ds, _) = featurize(&trace, 0.6, 0);
    let pred = model.predict(PredictionRequest::new(ds.row(row)));
    println!("{}", pred.message());
    println!(
        "(calibrated chance of starting within {:.0} minutes: {:.0}%)",
        pred.cutoff_min,
        100.0 * pred.calibrated_proba
    );
    let actual = trace.records[row].queue_time_min();
    println!("(actual queue time in trace: {actual:.1} minutes)");
    Ok(())
}

/// `trout whatif --model M --trace F --partition P --cpus N --mem GB --nodes N --timelimit MIN [--gpus N]`
///
/// The paper's future-work extension: predict the queue time of a job the
/// user has *not* submitted, from the current end-of-trace cluster state.
pub fn whatif(opts: &Options) -> Result<()> {
    let mut trace = load_trace(opts)?;
    let model = load_model(opts)?;
    let part_name = opts.require("partition")?;
    let partition = trace
        .cluster
        .partition_index(part_name)
        .ok_or_else(|| TroutError::Config(format!("unknown partition `{part_name}`")))?
        as u32;
    let cpus: u32 = opts.require_parsed("cpus")?;
    let mem: u32 = opts.require_parsed("mem")?;
    let nodes: u32 = opts.get_or("nodes", 1)?;
    let gpus: u32 = opts.get_or("gpus", 0)?;
    let timelimit: u32 = opts.require_parsed("timelimit")?;

    // Hypothetical submission "now" = the last eligibility instant observed.
    let now = trace
        .records
        .iter()
        .map(|r| r.eligible_time)
        .max()
        .unwrap_or(0);
    // Priority proxy: the median recent priority in the partition (the real
    // system would ask the multifactor plugin).
    let mut recent: Vec<f64> = trace
        .records
        .iter()
        .rev()
        .filter(|r| r.partition == partition)
        .take(200)
        .map(|r| r.priority)
        .collect();
    recent.sort_by(f64::total_cmp);
    let priority = recent.get(recent.len() / 2).copied().unwrap_or(1_000.0);

    let hypothetical = JobRecord {
        id: trace.records.last().map_or(0, |r| r.id + 1),
        user: 0,
        partition,
        submit_time: now,
        eligible_time: now,
        start_time: now, // zero-length pending interval: unknown outcome
        end_time: now + timelimit as i64 * 60,
        req_cpus: cpus,
        req_mem_gb: mem,
        req_nodes: nodes,
        req_gpus: gpus,
        timelimit_min: timelimit,
        qos: trout_workload::Qos::Normal,
        campaign: 0,
        priority,
        state: JobState::Completed,
    };
    trace.records.push(hypothetical);
    let (ds, _) = featurize(&trace, 0.6, 0);
    let pred = model.predict(PredictionRequest::new(ds.row(ds.len() - 1)));
    println!(
        "hypothetical job ({part_name}, {cpus} cpus, {mem} GB, {nodes} nodes, {timelimit} min limit):"
    );
    println!("{}", pred.message());
    Ok(())
}

/// `trout importance --model MODEL.json --trace FILE [--top N]`
pub fn importance(opts: &Options) -> Result<()> {
    let trace = load_trace(opts)?;
    let model = load_model(opts)?;
    let top: usize = opts.get_or("top", 10)?;
    let (ds, _) = featurize(&trace, 0.6, 0);
    // Importance of the regressor on the truly-long most recent jobs.
    let long = ds.long_wait_indices(model.cutoff_min);
    if long.is_empty() {
        return Err(TroutError::Model(
            "trace has no long-wait jobs to attribute".into(),
        ));
    }
    let take: Vec<usize> = long.iter().rev().take(4_000).copied().collect();
    let (x, y) = ds.select(&take);
    let imps = permutation_importance(
        &x,
        &y,
        |m| {
            model
                .predict_batch(BatchPredictionRequest::with_minutes(m))
                .into_iter()
                .map(|p| p.minutes.expect("want_minutes set"))
                .collect()
        },
        metrics::mape,
        2,
        7,
    );
    println!("{:<28} {:>14}", "Feature", "MAPE increase");
    for fi in imps.iter().take(top) {
        println!(
            "{:<28} {:>13.2}%",
            names::FEATURE_NAMES[fi.feature],
            fi.importance
        );
    }
    Ok(())
}

/// `trout eval --trace FILE [--folds N]` — the paper's full evaluation
/// protocol: per-fold classifier accuracy and regressor MAPE/r/within-100%.
pub fn eval(opts: &Options) -> Result<()> {
    let trace = load_trace(opts)?;
    let folds: usize = opts.get_or("folds", 5)?;
    let mut cfg = TroutConfig::default();
    cfg.seed = opts.get_or("seed", 0)?;
    cfg.regressor_epochs = opts.get_or("epochs", cfg.regressor_epochs)?;
    let (ds, _) = featurize(&trace, 0.6, cfg.seed);
    let reports = core_eval::evaluate_folds(&cfg, &ds, folds);
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "fold", "test jobs", "cls acc", "reg MAPE", "pearson", "within-100%"
    );
    for r in &reports {
        println!(
            "{:>5} {:>10} {:>11.2}% {:>11.2}% {:>10.3} {:>12.3}",
            r.fold,
            r.n_test,
            100.0 * r.classifier_accuracy,
            r.regressor_mape,
            r.pearson_r,
            r.within_100
        );
    }
    let last3: Vec<f64> = reports
        .iter()
        .rev()
        .take(3)
        .map(|r| r.regressor_mape)
        .collect();
    println!(
        "mean regressor MAPE over last {} folds: {:.2}%",
        last3.len(),
        last3.iter().sum::<f64>() / last3.len().max(1) as f64
    );
    Ok(())
}

/// `trout tune --trace FILE [--trials N]` — the Optuna-substitute search.
pub fn tune(opts: &Options) -> Result<()> {
    let trace = load_trace(opts)?;
    let trials: usize = opts.get_or("trials", 12)?;
    let seed: u64 = opts.get_or("seed", 7)?;
    let (ds, _) = featurize(&trace, 0.6, seed);
    let base = TroutConfig::default();
    let (best, result) = tune_regressor(
        &base,
        &ds,
        &TunerConfig {
            n_trials: trials,
            keep_fraction: 0.25,
            seed,
            ..Default::default()
        },
    );
    println!(
        "best validation MAPE (folds 2-3): {:.2}%",
        result.best_score
    );
    println!(
        "best config: lr={:.5} epochs={} hidden={:?} dropout={:.2} activation={:?} batch={}",
        best.lr,
        best.regressor_epochs,
        best.regressor_hidden,
        best.dropout,
        best.activation,
        best.batch_size
    );
    Ok(())
}
