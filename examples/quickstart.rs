//! Quickstart: simulate an Anvil-like trace, engineer the paper's features,
//! train the hierarchical model, and predict a queue time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use trout::core::eval;
use trout::prelude::*;

fn main() {
    // 1. Simulate a small accounting trace (the stand-in for Anvil's sacct
    //    dump; see DESIGN.md §1 for the substitution rationale).
    let trace = SimulationBuilder::anvil_like().jobs(8_000).seed(42).run();
    println!(
        "simulated {} jobs — {:.1}% queued under 10 minutes",
        trace.records.len(),
        100.0 * trace.quick_start_fraction(10.0)
    );

    // 2. Featurize: runtime random forest + the 33 Table-II features.
    let (ds, _runtime_model) = trout::core::featurize(&trace, 0.6, 1);
    println!("featurized: {} rows x {} features", ds.len(), ds.x.cols());

    // 3. Train TROUT on everything except the most recent sixth.
    let cfg = TroutConfig::default();
    let train: Vec<usize> = (0..ds.len() * 5 / 6).collect();
    let model = trout::core::TroutTrainer::new(cfg.clone()).fit_rows(&ds, &train);

    // 4. Algorithm 1 on the most recent jobs.
    println!("\npredictions for the 5 newest jobs:");
    for i in ds.len() - 5..ds.len() {
        let pred = model.predict(PredictionRequest::new(ds.row(i)));
        println!(
            "  job {:>6}: {}  (actual: {:.0} min)",
            ds.ids[i],
            pred.message(),
            ds.y_queue_min[i]
        );
    }

    // 5. Held-out metrics in the paper's terms.
    let reports = eval::evaluate_folds(&cfg, &ds, 5);
    let last3: Vec<&eval::FoldReport> = reports.iter().rev().take(3).collect();
    let mape = last3.iter().map(|r| r.regressor_mape).sum::<f64>() / 3.0;
    println!("\n5-fold time-series CV (paper protocol):");
    println!(
        "  classifier accuracy (final fold): {:.2}%",
        100.0 * reports.last().unwrap().classifier_accuracy
    );
    println!("  regressor MAPE, mean of last 3 folds: {mape:.1}%");
    println!(
        "  Pearson r (final fold): {:.3}",
        reports.last().unwrap().pearson_r
    );
}
