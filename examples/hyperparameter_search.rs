//! Scenario: hyper-parameter search — the Optuna stage of the paper's
//! pipeline (§III). Runs the successive-halving tuner over the regressor's
//! learning rate, epochs, depth, widths, dropout and activation, scoring on
//! validation folds 2–3, then reports the winner and the full trial history.
//!
//! ```text
//! cargo run --release --example hyperparameter_search
//! ```

use trout::core::tuner::{tune_regressor, TunerConfig};
use trout::core::{eval, featurize, TroutConfig};
use trout::prelude::*;

fn main() {
    let trace = SimulationBuilder::anvil_like().jobs(8_000).seed(42).run();
    let (ds, _) = featurize(&trace, 0.6, 1);

    let base = TroutConfig::default();
    let tuner = TunerConfig {
        n_trials: 10,
        keep_fraction: 0.3,
        seed: 7,
        ..Default::default()
    };
    println!(
        "searching {} trials (successive halving keeps {:.0}%)…",
        tuner.n_trials,
        100.0 * tuner.keep_fraction
    );
    let (best_cfg, result) = tune_regressor(&base, &ds, &tuner);

    println!("\nsurvivor trials (validation MAPE on folds 2-3):");
    for (params, score) in &result.history {
        println!(
            "  lr={:.5} epochs={:>2} depth={} width={:>3} dropout={:.2} -> {score:.1}%",
            params.get("lr"),
            params.get_usize("epochs"),
            params.get_usize("depth"),
            params.get_usize("width"),
            params.get("dropout"),
        );
    }
    println!(
        "\nbest: lr={:.5} epochs={} hidden={:?} dropout={:.2} activation={:?}",
        best_cfg.lr,
        best_cfg.regressor_epochs,
        best_cfg.regressor_hidden,
        best_cfg.dropout,
        best_cfg.activation
    );

    // Final verdict on the held-out folds the search never touched.
    let reports = eval::evaluate_folds(&best_cfg, &ds, 5);
    for r in reports.iter().filter(|r| r.fold >= 4) {
        println!(
            "held-out fold {}: MAPE {:.1}%  Pearson r {:.3}",
            r.fold, r.regressor_mape, r.pearson_r
        );
    }
}
