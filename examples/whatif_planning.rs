//! Scenario: hypothetical job queueing (§V future work) — "a user supplying
//! TROUT with the parameters requested for a job they wish to submit …
//! allowing users to optimize their job submissions until they achieve
//! parameters that will result in their job running within a desired time
//! frame."
//!
//! This example trains a model, then sweeps requested CPUs x walltime for a
//! hypothetical `shared`-partition job at the current end-of-trace cluster
//! state and prints the predicted queue-time matrix a user would consult
//! before submitting.
//!
//! ```text
//! cargo run --release --example whatif_planning
//! ```

use trout::prelude::*;
use trout::slurmsim::{JobRecord, JobState};

fn main() {
    let trace = SimulationBuilder::anvil_like().jobs(10_000).seed(11).run();
    let (ds, _) = trout::core::featurize(&trace, 0.6, 1);
    let model = TroutTrainer::new(TroutConfig::default()).fit(&ds);

    let now = trace.records.iter().map(|r| r.eligible_time).max().unwrap();
    let median_priority = {
        let mut p: Vec<f64> = trace
            .records
            .iter()
            .rev()
            .take(500)
            .map(|r| r.priority)
            .collect();
        p.sort_by(f64::total_cmp);
        p[p.len() / 2]
    };

    let cpus_options = [1u32, 4, 16, 64, 128];
    let walltime_options = [30u32, 120, 480, 1_440];

    println!("hypothetical shared-partition job — predicted queue time (minutes):\n");
    print!("{:>10}", "cpus\\limit");
    for w in walltime_options {
        print!("{w:>10}");
    }
    println!();
    for cpus in cpus_options {
        print!("{cpus:>10}");
        for timelimit in walltime_options {
            let mut t = trace.clone();
            t.records.push(JobRecord {
                id: t.records.last().unwrap().id + 1,
                user: 0,
                partition: 0, // shared
                submit_time: now,
                eligible_time: now,
                start_time: now,
                end_time: now + timelimit as i64 * 60,
                req_cpus: cpus,
                req_mem_gb: cpus * 2,
                req_nodes: 1,
                req_gpus: 0,
                timelimit_min: timelimit,
                qos: trout::workload::Qos::Normal,
                campaign: 0,
                priority: median_priority,
                state: JobState::Completed,
            });
            let (wds, _) = trout::core::featurize(&t, 0.6, 1);
            let cell = match model
                .predict(PredictionRequest::new(wds.row(wds.len() - 1)))
                .estimate
            {
                QueueEstimate::QuickStart => "<10".to_string(),
                QueueEstimate::Minutes(m) => format!("{m:.0}"),
            };
            print!("{cell:>10}");
        }
        println!();
    }
    println!(
        "\n(a user would pick the cheapest cell that still meets their deadline — \
         the paper's submission-optimization loop)"
    );
}
