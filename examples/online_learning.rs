//! Scenario: online learning (§V future work) — "future work on integrating
//! online learning capabilities is needed to ensure predictions stay current
//! with the cluster changes."
//!
//! Trains TROUT on the first half of a trace, then streams the second half in
//! day-sized chunks. A frozen copy predicts each chunk as-is; the online copy
//! predicts the chunk *then* fine-tunes on it (warm start at reduced learning
//! rate). The printout shows per-chunk classifier accuracy for both.
//!
//! ```text
//! cargo run --release --example online_learning
//! ```

use trout::core::online::{update_model, OnlineConfig};
use trout::core::{featurize, TroutConfig, TroutTrainer};
use trout::ml::metrics;
use trout::prelude::*;

fn main() {
    let trace = SimulationBuilder::anvil_like().jobs(16_000).seed(42).run();
    let (ds, _) = featurize(&trace, 0.5, 1);

    let base = TroutConfig::default();
    let train: Vec<usize> = (0..8_000).collect();
    let frozen = TroutTrainer::new(base.clone()).fit_rows(&ds, &train);
    let mut live = frozen.clone();
    let online = OnlineConfig::default();

    println!(
        "{:>6} {:>18} {:>18} {:>14}",
        "chunk", "frozen acc", "online acc", "chunk quick%"
    );
    let (mut f_total, mut o_total, mut chunks) = (0.0, 0.0, 0);
    for start in (8_000..16_000).step_by(1_000) {
        let rows: Vec<usize> = (start..start + 1_000).collect();
        let (tx, ty) = ds.select(&rows);
        let labels: Vec<f32> = ty
            .iter()
            .map(|&q| if q < 10.0 { 1.0 } else { 0.0 })
            .collect();
        let quick_frac = labels.iter().filter(|&&l| l >= 0.5).count() as f64 / labels.len() as f64;

        let quick_probs = |m: &trout::core::HierarchicalModel| -> Vec<f32> {
            m.predict_batch(BatchPredictionRequest::new(&tx))
                .into_iter()
                .map(|p| p.quick_proba)
                .collect()
        };
        let f_acc = metrics::binary_accuracy(&quick_probs(&frozen), &labels);
        let o_acc = metrics::binary_accuracy(&quick_probs(&live), &labels);
        println!(
            "{:>6} {:>17.2}% {:>17.2}% {:>13.1}%",
            chunks + 1,
            100.0 * f_acc,
            100.0 * o_acc,
            100.0 * quick_frac
        );
        f_total += f_acc;
        o_total += o_acc;
        chunks += 1;

        // The chunk's jobs have now completed: fine-tune on them.
        update_model(&mut live, &base, &online, &ds, &rows);
    }
    println!(
        "\nmean: frozen {:.2}%  online {:.2}%  ({} chunks)",
        100.0 * f_total / chunks as f64,
        100.0 * o_total / chunks as f64,
        chunks
    );
}
