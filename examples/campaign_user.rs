//! Scenario: a power user fires off a campaign of near-identical jobs —
//! exactly the workload pattern §III warns about (back-to-back submissions
//! whose queue times are strongly correlated, the source of the shuffled-
//! split leakage). This example finds the largest campaign in a simulated
//! trace, shows how its queue times evolve as the burst saturates the
//! partition, and how TROUT's predictions track that build-up.
//!
//! ```text
//! cargo run --release --example campaign_user
//! ```

use std::collections::HashMap;

use trout::prelude::*;

fn main() {
    let trace = SimulationBuilder::anvil_like().jobs(12_000).seed(7).run();

    // Find the biggest campaign burst that actually queued (bursts whose
    // jobs all started instantly make a dull demo).
    let mut sizes: HashMap<u64, (usize, f64)> = HashMap::new();
    for r in &trace.records {
        let e = sizes.entry(r.campaign).or_default();
        e.0 += 1;
        e.1 += r.queue_time_min();
    }
    let (&campaign, &(size, _)) = sizes
        .iter()
        .filter(|(_, &(n, total))| n >= 10 && total / n as f64 >= 10.0)
        .max_by_key(|(_, &(n, _))| n)
        .or_else(|| sizes.iter().max_by_key(|(_, &(n, _))| n))
        .expect("non-empty trace");
    let rows: Vec<usize> = trace
        .records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.campaign == campaign)
        .map(|(i, _)| i)
        .collect();
    let first = &trace.records[rows[0]];
    println!(
        "largest campaign: #{campaign} — user {} submitted {size} identical jobs \
         ({} cpus, {} min limit) to partition {}",
        first.user, first.req_cpus, first.timelimit_min, first.partition
    );

    // Train on everything before the campaign started.
    let (ds, _) = trout::core::featurize(&trace, 0.6, 1);
    let train: Vec<usize> = (0..rows[0].max(1_000)).collect();
    let model = TroutTrainer::new(TroutConfig::default()).fit_rows(&ds, &train);

    // Walk the burst: actual vs predicted queue time.
    println!(
        "\n{:>8} {:>14} {:>18}",
        "job", "actual (min)", "TROUT prediction"
    );
    let step = (rows.len() / 12).max(1);
    for &i in rows.iter().step_by(step) {
        let pred = model.predict(PredictionRequest::new(ds.row(i)));
        let shown = match pred.estimate {
            QueueEstimate::QuickStart => "< 10 min".to_string(),
            QueueEstimate::Minutes(m) => format!("{m:.0} min"),
        };
        println!("{:>8} {:>14.1} {:>18}", ds.ids[i], ds.y_queue_min[i], shown);
    }

    // The burst's own back-pressure: later jobs in the campaign see more of
    // their siblings in the queue, so their predicted waits should not drop.
    let first_pred = model
        .predict(PredictionRequest::new(ds.row(rows[0])))
        .as_minutes();
    let last_pred = model
        .predict(PredictionRequest::new(ds.row(*rows.last().unwrap())))
        .as_minutes();
    println!(
        "\nqueue build-up across the campaign: first job predicted {first_pred:.0} min, \
         last job predicted {last_pred:.0} min"
    );
}
