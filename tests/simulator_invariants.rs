//! Property tests over the scheduler: conservation and causality invariants
//! must hold for any workload configuration, not just the defaults.
//!
//! Runs on `trout_std::proptest_lite` with the fixed default seed; a failing
//! case prints its seed and shrunk input plus a `TROUT_PROPTEST_SEED=...`
//! reproduction line.

use trout::slurmsim::{simulate, SchedulerConfig, Trace};
use trout::workload::{ClusterSpec, WorkloadConfig, WorkloadGenerator};
use trout_std::{prop_assert, prop_assert_eq, proptest_lite};

fn run_trace(jobs: usize, seed: u64, events_per_hour: f64, max_campaign: usize) -> Trace {
    let cluster = ClusterSpec::anvil_like();
    let mut cfg = WorkloadConfig::anvil_like(jobs);
    cfg.seed = seed;
    cfg.events_per_hour = events_per_hour;
    cfg.max_campaign = max_campaign;
    let (pop, reqs) = WorkloadGenerator::new(cfg, cluster.clone()).generate();
    simulate(&cluster, &pop, reqs, &SchedulerConfig::default())
}

proptest_lite! {
    #[cases(8)]
    fn causality_and_conservation_hold(
        seed in 0u64..1_000,
        events_per_hour in 10.0f64..90.0,
        max_campaign in 2usize..300
    ) {
        let trace = run_trace(600, seed, events_per_hour, max_campaign);
        prop_assert_eq!(trace.records.len(), 600);

        // Causality per job.
        for r in &trace.records {
            prop_assert!(r.eligible_time >= r.submit_time);
            prop_assert!(r.start_time >= r.eligible_time);
            prop_assert!(r.end_time > r.start_time);
            let runtime_min = (r.end_time - r.start_time) as f64 / 60.0;
            prop_assert!(runtime_min <= r.timelimit_min as f64 + 1e-9,
                "job {} ran past its limit", r.id);
        }

        // Pool-level CPU conservation via sweep line.
        for (pool_id, count) in trace.cluster.pools() {
            let cap = trace.cluster.partitions.iter()
                .filter(|p| p.node_pool == pool_id)
                .map(|p| p.cpus_per_node)
                .max().unwrap() as i64 * count as i64;
            let mut deltas: Vec<(i64, i64)> = Vec::new();
            for r in &trace.records {
                let spec = &trace.cluster.partitions[r.partition as usize];
                if spec.node_pool != pool_id {
                    continue;
                }
                let cpus = if spec.whole_node {
                    (r.req_nodes * spec.cpus_per_node) as i64
                } else {
                    r.req_cpus as i64
                };
                deltas.push((r.start_time, cpus));
                deltas.push((r.end_time, -cpus));
            }
            deltas.sort();
            let mut used = 0i64;
            for (_, d) in deltas {
                used += d;
                prop_assert!(used <= cap, "pool {} oversubscribed: {} > {}", pool_id, used, cap);
            }
        }
    }

    #[cases(8)]
    fn simulation_is_a_pure_function_of_the_seed(seed in 0u64..500) {
        let a = run_trace(300, seed, 40.0, 50);
        let b = run_trace(300, seed, 40.0, 50);
        prop_assert_eq!(a.records, b.records);
    }
}
