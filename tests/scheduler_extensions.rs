//! Integration coverage for the scheduler extensions (preemption,
//! cancellations, SWF interop) through the public workspace API.

use trout::prelude::*;
use trout::slurmsim::{simulate, JobState, SchedulerConfig};
use trout::workload::{ClusterSpec, WorkloadConfig, WorkloadGenerator};

fn trace_with(cancel_fraction: f64, preemption: bool, jobs: usize, seed: u64) -> Trace {
    let cluster = ClusterSpec::anvil_like();
    let mut wl = WorkloadConfig::anvil_like(jobs);
    wl.seed = seed;
    wl.cancel_fraction = cancel_fraction;
    let (pop, reqs) = WorkloadGenerator::new(wl, cluster.clone()).generate();
    let cfg = SchedulerConfig {
        enable_preemption: preemption,
        ..Default::default()
    };
    simulate(&cluster, &pop, reqs, &cfg)
}

#[test]
fn preemption_lowers_normal_qos_waits_under_load() {
    // With standby jobs preemptible, non-standby jobs should on aggregate
    // wait no longer than without preemption (same workload).
    let with = trace_with(0.0, true, 4_000, 21);
    let without = trace_with(0.0, false, 4_000, 21);
    let mean_wait = |t: &Trace, standby: bool| -> f64 {
        let xs: Vec<f64> = t
            .records
            .iter()
            .filter(|r| (r.qos == trout::workload::Qos::Standby) == standby)
            .map(|r| r.queue_time_min())
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let normal_with = mean_wait(&with, false);
    let normal_without = mean_wait(&without, false);
    assert!(
        normal_with <= normal_without * 1.05,
        "preemption should not hurt non-standby waits: {normal_with:.1} vs {normal_without:.1}"
    );
}

#[test]
fn full_pipeline_works_with_cancellations_enabled() {
    let trace = trace_with(0.12, true, 3_000, 14);
    let cancelled = trace
        .records
        .iter()
        .filter(|r| r.state == JobState::Cancelled)
        .count();
    assert!(cancelled > 0, "expected some cancellations");

    let (ds, _) = trout::core::featurize(&trace, 0.6, 1);
    assert_eq!(ds.len(), 3_000 - cancelled);

    let model = TroutTrainer::new(TroutConfig::smoke()).fit(&ds);
    for i in (0..ds.len()).step_by(257) {
        let pred = model.predict(PredictionRequest::new(ds.row(i)));
        assert!((0.0..=1.0).contains(&pred.calibrated_proba));
    }
}

#[test]
fn swf_round_trip_supports_the_full_pipeline() {
    let trace = trace_with(0.0, true, 2_500, 14);
    let swf = trout::slurmsim::swf::to_swf(&trace);
    let (imported, stats) = trout::slurmsim::swf::parse_swf(&swf).expect("parse");
    assert_eq!(stats.imported, 2_500);
    let ds = FeaturePipeline::standard().build(&imported);
    assert_eq!(ds.len(), 2_500);
    let model = TroutTrainer::new(TroutConfig::smoke()).fit(&ds);
    let _ = model.predict(PredictionRequest::new(ds.row(0)));
}

#[test]
fn feature_drift_is_visible_between_trace_halves() {
    use trout::ml::metrics::population_stability_index;
    // Queue-state features drift between a quiet early window and the loaded
    // steady state — the §V motivation for online learning.
    let trace = trace_with(0.0, true, 8_000, 42);
    let (ds, _) = trout::core::featurize(&trace, 0.5, 1);
    let j = trout::features::names::idx::PAR_CPUS_RUNNING;
    let early: Vec<f32> = (0..1_000).map(|i| ds.raw.get(i, j)).collect();
    let late: Vec<f32> = (7_000..8_000).map(|i| ds.raw.get(i, j)).collect();
    let psi = population_stability_index(&early, &late, 10);
    assert!(psi.is_finite() && psi >= 0.0);
    // Same window against itself is stable.
    let self_psi = population_stability_index(&early, &early, 10);
    assert!(self_psi < 0.01, "self PSI {self_psi}");
}
