//! Cross-crate integration: simulate → featurize → train → predict →
//! checkpoint, exercising the whole public API the way the examples do.

use trout::core::{eval, featurize, HierarchicalModel, TroutConfig, TroutTrainer};
use trout::prelude::*;

fn trace() -> Trace {
    SimulationBuilder::anvil_like().jobs(3_000).seed(14).run()
}

#[test]
fn full_pipeline_produces_sane_predictions() {
    let trace = trace();
    let (ds, _) = featurize(&trace, 0.6, 1);
    assert_eq!(ds.len(), 3_000);
    assert_eq!(ds.x.cols(), 33);

    let cfg = TroutConfig::smoke();
    let train: Vec<usize> = (0..2_500).collect();
    let model = TroutTrainer::new(cfg.clone()).fit_rows(&ds, &train);

    let mut quick = 0usize;
    for i in 2_500..3_000 {
        match model.predict(PredictionRequest::new(ds.row(i))).estimate {
            QueueEstimate::QuickStart => quick += 1,
            QueueEstimate::Minutes(m) => {
                assert!(m.is_finite() && m >= 0.0, "minutes prediction {m}");
                assert!(m < 60.0 * 24.0 * 30.0, "absurd prediction {m}");
            }
        }
    }
    // The test window is majority quick-start; the classifier should say so
    // for a solid majority of jobs.
    assert!(quick > 250, "only {quick}/500 predicted quick");
}

#[test]
fn checkpoint_file_round_trip() {
    let trace = trace();
    let (ds, _) = featurize(&trace, 0.6, 1);
    let model = TroutTrainer::new(TroutConfig::smoke()).fit(&ds);

    let dir = std::env::temp_dir().join("trout-it-checkpoint");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    std::fs::write(&path, model.to_json()).unwrap();
    let loaded = HierarchicalModel::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();

    for i in (0..ds.len()).step_by(111) {
        assert_eq!(
            model.predict(PredictionRequest::new(ds.row(i))),
            loaded.predict(PredictionRequest::new(ds.row(i))),
            "row {i}"
        );
    }
}

#[test]
fn trace_csv_round_trip_preserves_features() {
    let trace = trace();
    let csv = trace.to_csv();
    let back = Trace::from_csv(trace.cluster.clone(), &csv).expect("parse");
    assert_eq!(back.records, trace.records);

    // Feature pipelines on original and round-tripped traces agree.
    let a = FeaturePipeline::standard().build(&trace);
    let b = FeaturePipeline::standard().build(&back);
    assert_eq!(a.x.as_slice(), b.x.as_slice());
}

#[test]
fn evaluation_protocol_is_reproducible() {
    let trace = trace();
    let (ds, _) = featurize(&trace, 0.6, 1);
    let mut cfg = TroutConfig::smoke();
    cfg.classifier_epochs = 4;
    cfg.regressor_epochs = 4;
    let a = eval::evaluate_folds(&cfg, &ds, 3);
    let b = eval::evaluate_folds(&cfg, &ds, 3);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.classifier_accuracy, y.classifier_accuracy);
        assert_eq!(x.regressor_mape, y.regressor_mape);
    }
}

#[test]
fn pipeline_is_deterministic_across_runs_and_thread_counts() {
    // Byte-identical traces from the same seed.
    let t1 = trace();
    let t2 = trace();
    assert_eq!(
        t1.to_csv(),
        t2.to_csv(),
        "trace generation must be byte-identical per seed"
    );

    // Features, training and predictions must not depend on the worker
    // count: trout_std::par splits work into contiguous order-preserving
    // blocks, so 1 thread and 4 threads produce bit-identical results.
    let run = |threads: &str| {
        std::env::set_var("TROUT_THREADS", threads);
        let (ds, _) = featurize(&t1, 0.6, 1);
        let model = TroutTrainer::new(TroutConfig::smoke()).fit(&ds);
        let preds: Vec<QueuePrediction> = (0..ds.len())
            .step_by(37)
            .map(|i| model.predict(PredictionRequest::new(ds.row(i))))
            .collect();
        (ds, preds)
    };
    let (ds1, p1) = run("1");
    let (ds4, p4) = run("4");
    std::env::remove_var("TROUT_THREADS");
    assert_eq!(
        ds1.x.as_slice(),
        ds4.x.as_slice(),
        "features must be bit-identical for any thread count"
    );
    assert_eq!(p1, p4, "predictions must be identical for any thread count");
}

#[test]
fn quickstart_doc_flow_compiles_and_runs_small() {
    // Mirrors the README quickstart at reduced scale.
    let trace = SimulationBuilder::anvil_like().jobs(2_000).seed(7).run();
    let dataset = FeaturePipeline::standard().build(&trace);
    let model = TroutTrainer::new(TroutConfig::smoke()).fit(&dataset);
    let pred = model.predict(PredictionRequest::new(dataset.row(dataset.len() - 1)));
    let _ = pred.message();
}
